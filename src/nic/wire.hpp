// The wire: delivers a traffic source's packets to a NIC at their
// recorded timestamps — the software stand-in for the paper's hardware
// traffic generator, which "replays captured traffic at the speed
// exactly as recorded" or blasts synthetic packets at wire rate.
#pragma once

#include <cstdint>
#include <memory>

#include "nic/device.hpp"
#include "sim/scheduler.hpp"
#include "trace/source.hpp"

namespace wirecap::nic {

class TrafficInjector {
 public:
  /// Binds `source` to `nic`.  Packets are injected at their timestamps;
  /// call start() once before running the scheduler.
  TrafficInjector(sim::Scheduler& scheduler, trace::TrafficSource& source,
                  MultiQueueNic& nic)
      : scheduler_(scheduler), source_(source), nic_(nic) {}

  void start() { schedule_next(); }

  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  void schedule_next() {
    auto packet = source_.next();
    if (!packet) return;
    const Nanos when = packet->timestamp();
    scheduler_.schedule_at(when, [this, p = std::move(*packet)] {
      nic_.receive(p);
      ++injected_;
      schedule_next();
    });
  }

  sim::Scheduler& scheduler_;
  trace::TrafficSource& source_;
  MultiQueueNic& nic_;
  std::uint64_t injected_ = 0;
};

}  // namespace wirecap::nic
