// PipelineRunner — the simulation actor that drives capture through a
// Pipeline into a FanOut.  The batch-granular read loop mirrors
// apps::PktHandler: each iteration pulls one batch via try_next_batch(),
// charges the batch's processing cost as one work item on the
// application core, runs the stages in place, and hands the survivors
// to the FanOut terminal (which owns the release from there on).
#pragma once

#include <cstdint>

#include "engines/engine.hpp"
#include "pipeline/fanout.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/core.hpp"
#include "sim/costs.hpp"

namespace wirecap::pipeline {

struct PipelineRunnerConfig {
  /// Packets pulled per try_next_batch() call.
  std::size_t batch_packets = 64;
  /// Per-packet processing cost proxy, in equivalent BPF applications
  /// (the experiment harness's x): charged via CostModel as the cost of
  /// running the stages + subscriber handlers over one packet.
  unsigned x = 0;
};

struct PipelineRunnerStats {
  std::uint64_t batches = 0;     // delivering try_next_batch calls
  std::uint64_t packets_in = 0;  // packets entering the pipeline
  std::uint64_t packets_out = 0; // packets surviving to the fan-out
};

class PipelineRunner {
 public:
  /// Opens `queue` on `engine` and starts the read loop.  `fanout` must
  /// outlive the runner; subscribers must already be registered.
  PipelineRunner(sim::SimCore& core, engines::CaptureEngine& engine,
                 std::uint32_t queue, Pipeline pipeline, FanOut& fanout,
                 PipelineRunnerConfig config, const sim::CostModel& costs);

  [[nodiscard]] const PipelineRunnerStats& stats() const { return stats_; }
  [[nodiscard]] Pipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const Pipeline& pipeline() const { return pipeline_; }
  [[nodiscard]] std::uint32_t queue() const { return queue_; }

 private:
  void maybe_start();
  void process_batch();

  sim::SimCore& core_;
  engines::CaptureEngine& engine_;
  std::uint32_t queue_;
  Pipeline pipeline_;
  FanOut& fanout_;
  PipelineRunnerConfig config_;
  Nanos per_packet_cost_;
  PipelineRunnerStats stats_;
  engines::PacketBatch batch_;
  bool busy_ = false;
};

}  // namespace wirecap::pipeline
