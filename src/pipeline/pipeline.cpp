#include "pipeline/pipeline.hpp"

#include <unordered_map>

namespace wirecap::pipeline {

Stage& Pipeline::add(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  return *stages_.back();
}

void Pipeline::run(engines::PacketBatch& batch) {
  ++batches_;
  packets_in_ += batch.views.size();
  for (const std::unique_ptr<Stage>& stage : stages_) {
    if (batch.views.empty()) break;
    stage->process(batch);
  }
  packets_out_ += batch.views.size();
}

Stage* Pipeline::find(std::string_view name) {
  for (const std::unique_ptr<Stage>& stage : stages_) {
    if (stage->name() == name) return stage.get();
  }
  return nullptr;
}

void Pipeline::bind_telemetry(telemetry::Telemetry& telemetry,
                              const std::string& prefix) const {
  telemetry.registry.bind_counter(prefix + ".batches",
                                  [this] { return batches_; });
  telemetry.registry.bind_counter(prefix + ".packets_in",
                                  [this] { return packets_in_; });
  telemetry.registry.bind_counter(prefix + ".packets_out",
                                  [this] { return packets_out_; });
  std::unordered_map<std::string, std::size_t> seen;
  for (const std::unique_ptr<Stage>& stage : stages_) {
    std::string base(stage->name());
    const std::size_t ordinal = ++seen[base];
    if (ordinal > 1) base += std::to_string(ordinal);
    const std::string stem = prefix + "." + base;
    const Stage* s = stage.get();
    telemetry.registry.bind_counter(stem + ".batches",
                                    [s] { return s->stats().batches; });
    telemetry.registry.bind_counter(stem + ".packets_in",
                                    [s] { return s->stats().packets_in; });
    telemetry.registry.bind_counter(stem + ".packets_out",
                                    [s] { return s->stats().packets_out; });
    telemetry.registry.bind_counter(stem + ".dropped",
                                    [s] { return s->stats().dropped(); });
  }
}

}  // namespace wirecap::pipeline
