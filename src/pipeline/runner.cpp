#include "pipeline/runner.hpp"

#include <utility>

namespace wirecap::pipeline {

PipelineRunner::PipelineRunner(sim::SimCore& core,
                               engines::CaptureEngine& engine,
                               std::uint32_t queue, Pipeline pipeline,
                               FanOut& fanout, PipelineRunnerConfig config,
                               const sim::CostModel& costs)
    : core_(core),
      engine_(engine),
      queue_(queue),
      pipeline_(std::move(pipeline)),
      fanout_(fanout),
      config_(config) {
  per_packet_cost_ =
      costs.pkt_handler_cost(config_.x) + engine.app_overhead_per_packet();
  if (config_.batch_packets == 0) config_.batch_packets = 1;
  engine_.open(queue_, core_);
  engine_.set_data_callback(queue_, [this] { maybe_start(); });
  maybe_start();
}

void PipelineRunner::maybe_start() {
  if (busy_) return;
  busy_ = true;
  process_batch();
}

void PipelineRunner::process_batch() {
  const std::size_t n =
      engine_.try_next_batch(queue_, config_.batch_packets, batch_);
  if (n == 0) {
    busy_ = false;  // back to blocking on the capture API
    return;
  }
  // One work item per batch, like PktHandler: batch_ is stable until the
  // item runs (maybe_start never re-enters while busy_).
  core_.submit(sim::WorkPriority::kUser,
               per_packet_cost_ * static_cast<std::int64_t>(n), [this] {
    ++stats_.batches;
    stats_.packets_in += batch_.size();
    pipeline_.run(batch_);
    stats_.packets_out += batch_.size();
    // The FanOut consumes the batch — steering, subscriber delivery and
    // every release happen inside (including the compacted-to-zero
    // case, where offer() settles the refs itself).
    fanout_.offer(queue_, std::move(batch_));
    batch_.clear();  // moved-from: restore to a known-empty state
    process_batch();
  });
}

}  // namespace wirecap::pipeline
