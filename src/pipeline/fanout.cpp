#include "pipeline/fanout.hpp"

#include <stdexcept>
#include <utility>

#include "net/headers.hpp"

namespace wirecap::pipeline {

SharedBatch& SharedBatch::operator=(SharedBatch&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = std::exchange(other.owner_, nullptr);
    queue_ = other.queue_;
    slot_ = other.slot_;
    batch_ = std::move(other.batch_);
  }
  return *this;
}

void SharedBatch::release() {
  if (owner_ == nullptr) return;
  FanOut* owner = std::exchange(owner_, nullptr);
  owner->release_shared(*this);
  batch_.clear();
}

FanOut::FanOut(engines::CaptureEngine& engine, Steering steering)
    : engine_(engine), steering_(steering) {}

std::size_t FanOut::subscribe(Subscriber subscriber) {
  if (!subscriber.handler) {
    throw std::invalid_argument("FanOut::subscribe: handler is required");
  }
  Sub sub;
  if (subscriber.match) sub.matcher.emplace(*subscriber.match);
  sub.config = std::move(subscriber);
  subs_.push_back(std::move(sub));
  scratch_.emplace_back();
  return subs_.size() - 1;
}

void FanOut::offer(std::uint32_t queue, engines::PacketBatch&& batch) {
  ++offers_;
  const std::size_t nsubs = subs_.size();
  for (std::vector<engines::CaptureView>& views : scratch_) views.clear();

  if (!batch.views.empty()) {
    switch (steering_) {
      case Steering::kBroadcast:
        for (std::size_t i = 0; i < nsubs; ++i) {
          scratch_[i].assign(batch.views.begin(), batch.views.end());
        }
        break;
      case Steering::kFlowHash:
        for (const engines::CaptureView& view : batch.views) {
          const std::optional<net::FlowKey> flow =
              net::parse_flow(view.bytes);
          const std::uint64_t key = flow ? flow->mix() : view.seq;
          scratch_[key % nsubs].push_back(view);
        }
        break;
      case Steering::kBpfMatch:
        for (std::size_t i = 0; i < nsubs; ++i) {
          if (!subs_[i].matcher) {
            scratch_[i].assign(batch.views.begin(), batch.views.end());
            continue;
          }
          subs_[i].matcher->run_batch(batch, accepts_);
          for (std::size_t v = 0; v < batch.views.size(); ++v) {
            if (accepts_[v] != 0) scratch_[i].push_back(batch.views[v]);
          }
        }
        break;
    }
  }

  std::uint32_t receivers = 0;
  for (const std::vector<engines::CaptureView>& views : scratch_) {
    if (!views.empty()) ++receivers;
  }

  if (receivers == 0) {
    // Nobody wants it (or the pipeline compacted it away): settle the
    // batch's release obligations right here.
    ++unclaimed_;
    if (!batch.refs.empty() || !batch.views.empty()) {
      engine_.done_batch(queue, batch);
    }
    batch.clear();
    return;
  }

  if (engine_.supports_batch_shares() && !batch.refs.empty()) {
    // Engine-share mode: grant one extra full release per receiving
    // subscriber BEFORE any SharedBatch exists, so a handler releasing
    // synchronously can never drop the chunk refcount to zero early.
    engine_.add_batch_shares(queue, batch, receivers);
    shares_granted_ += receivers;
    for (std::size_t i = 0; i < nsubs; ++i) {
      if (scratch_[i].empty()) continue;
      SharedBatch shared(this, queue, /*slot=*/0);
      shared.batch_.views = std::move(scratch_[i]);
      shared.batch_.refs = batch.refs;  // a full release obligation each
      shared.batch_.source_ring = batch.source_ring;
      note_delivery(subs_[i], shared.batch_);
      subs_[i].config.handler(std::move(shared));
    }
    // The original's own release obligation is still ours.
    engine_.done_batch(queue, batch);
    batch.clear();
    return;
  }

  // Slot fallback: park the original, count pending releases, hand out
  // refs-free view batches.  The last release fires the real
  // done_batch().
  const std::uint64_t slot_id = next_slot_++;
  const std::uint32_t source_ring = batch.source_ring;
  Slot& slot = slots_[slot_id];
  slot.original = std::move(batch);
  slot.queue = queue;
  slot.remaining = receivers;
  for (std::size_t i = 0; i < nsubs; ++i) {
    if (scratch_[i].empty()) continue;
    SharedBatch shared(this, queue, slot_id);
    shared.batch_.views = std::move(scratch_[i]);
    shared.batch_.source_ring = source_ring;
    note_delivery(subs_[i], shared.batch_);
    subs_[i].config.handler(std::move(shared));
  }
}

void FanOut::release_shared(SharedBatch& shared) {
  ++releases_;
  if (shared.slot_ == 0) {
    engine_.done_batch(shared.queue_, shared.batch_);
    return;
  }
  const auto it = slots_.find(shared.slot_);
  if (it == slots_.end() || it->second.remaining == 0) {
    throw std::logic_error("FanOut: release of an unknown fan-out slot");
  }
  if (--it->second.remaining == 0) {
    engine_.done_batch(it->second.queue, it->second.original);
    slots_.erase(it);
  }
}

void FanOut::note_delivery(Sub& sub, const engines::PacketBatch& batch) {
  ++sub.stats.batches;
  sub.stats.packets += batch.views.size();
  for (const engines::CaptureView& view : batch.views) {
    sub.stats.bytes += view.wire_len;
  }
}

void FanOut::bind_telemetry(telemetry::Telemetry& telemetry,
                            const std::string& prefix) const {
  telemetry.registry.bind_counter(prefix + ".offers",
                                  [this] { return offers_; });
  telemetry.registry.bind_counter(prefix + ".unclaimed",
                                  [this] { return unclaimed_; });
  telemetry.registry.bind_counter(prefix + ".releases",
                                  [this] { return releases_; });
  telemetry.registry.bind_counter(prefix + ".shares_granted",
                                  [this] { return shares_granted_; });
  for (const Sub& sub : subs_) {
    const std::string stem = prefix + ".sub." + sub.config.name;
    const Sub* s = &sub;
    telemetry.registry.bind_counter(stem + ".batches",
                                    [s] { return s->stats.batches; });
    telemetry.registry.bind_counter(stem + ".packets",
                                    [s] { return s->stats.packets; });
    telemetry.registry.bind_counter(stem + ".bytes",
                                    [s] { return s->stats.bytes; });
  }
}

}  // namespace wirecap::pipeline
