// The in-capture processing stage contract (ROADMAP: "in-capture
// functional processing pipeline", in the PFQ / sPIN direction).
//
// A Stage transforms one engines::PacketBatch *in place* at batch
// granularity.  The compaction contract: a stage drops packets by
// moving the surviving CaptureViews to the front of `batch.views` and
// shrinking the vector — views are ~40-byte metadata records aliasing
// the capture chunk, so a drop never copies packet bytes.  Stages must
// never touch `batch.refs`: the refs record the release obligations
// try_next_batch() minted, and done_batch() settles them regardless of
// what the stages kept — that is what makes arbitrary (even total)
// compaction leak-free.
#pragma once

#include <cstdint>
#include <string_view>

#include "engines/packet_view.hpp"

namespace wirecap::pipeline {

/// Per-stage accounting, published as pipeline.<stage>.* counters.
struct StageStats {
  std::uint64_t batches = 0;
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  [[nodiscard]] std::uint64_t dropped() const {
    return packets_in - packets_out;
  }
};

class Stage {
 public:
  virtual ~Stage() = default;

  /// Stable identifier used for telemetry names and spec parsing.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Transforms `batch` in place (see the compaction contract above).
  /// Views may also be rewritten — e.g. truncation shrinks
  /// `view.bytes` — as long as they keep aliasing the capture chunk.
  virtual void process(engines::PacketBatch& batch) = 0;

  [[nodiscard]] const StageStats& stats() const { return stats_; }

 protected:
  /// Implementations call this once per process() invocation.
  void account(std::size_t packets_in, std::size_t packets_out) {
    ++stats_.batches;
    stats_.packets_in += packets_in;
    stats_.packets_out += packets_out;
  }

  StageStats stats_;
};

/// In-place compaction helper: keeps exactly the views for which
/// `keep(index, view)` returns true, preserving order.  Metadata-only —
/// packet bytes never move.
template <typename Keep>
void compact_views(engines::PacketBatch& batch, Keep&& keep) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < batch.views.size(); ++i) {
    if (keep(i, batch.views[i])) {
      if (w != i) batch.views[w] = batch.views[i];
      ++w;
    }
  }
  batch.views.resize(w);
}

}  // namespace wirecap::pipeline
