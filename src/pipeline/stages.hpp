// Built-in pipeline stages: BPF pushdown filtering, 1-in-N and
// per-flow sampling, snaplen truncation, and per-flow aggregation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bpf/insn.hpp"
#include "bpf/predecode.hpp"
#include "common/units.hpp"
#include "net/flow_table.hpp"
#include "pipeline/stage.hpp"

namespace wirecap::pipeline {

/// Pushdown BPF pre-filter: one bpf::Predecoded::run_batch() pass per
/// batch, then metadata-only compaction of the rejected views.  Running
/// this before delivery is the "filter in capture" the paper's kernel
/// filter performs — consumers never see packets the filter rejects.
class FilterStage final : public Stage {
 public:
  /// Compiles `expression` with the built-in filter compiler.
  explicit FilterStage(const std::string& expression);
  /// Verifies and pre-decodes an already-built program.
  explicit FilterStage(const bpf::Program& program);

  [[nodiscard]] std::string_view name() const override { return "filter"; }
  void process(engines::PacketBatch& batch) override;

 private:
  bpf::Predecoded filter_;
  std::vector<std::uint8_t> accepts_;  // reused across batches
};

enum class SampleMode : std::uint8_t {
  /// Keeps every Nth packet of the stream (deterministic count-based
  /// decimation).
  kOneInN,
  /// Keeps every packet of 1-in-N *flows* (FlowKey::mix() % N == 0), so
  /// sampled flows stay whole — the property per-flow analysis needs.
  /// Packets with no parseable 5-tuple fall back to seq-based 1-in-N.
  kPerFlow,
};

class SampleStage final : public Stage {
 public:
  SampleStage(SampleMode mode, std::uint32_t n);

  [[nodiscard]] std::string_view name() const override { return "sample"; }
  void process(engines::PacketBatch& batch) override;

  [[nodiscard]] SampleMode mode() const { return mode_; }
  [[nodiscard]] std::uint32_t n() const { return n_; }

 private:
  SampleMode mode_;
  std::uint32_t n_;
  std::uint64_t counter_ = 0;  // kOneInN position in the stream
};

/// Shrinks every view to at most `snaplen` captured bytes by slicing
/// the view's span — zero-copy truncation; `wire_len` keeps reporting
/// the original length, exactly like a pcap snaplen.
class TruncateStage final : public Stage {
 public:
  explicit TruncateStage(std::uint32_t snaplen);

  [[nodiscard]] std::string_view name() const override { return "truncate"; }
  void process(engines::PacketBatch& batch) override;

  [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }
  /// Views actually shortened (caplen was above the snaplen).
  [[nodiscard]] std::uint64_t truncated() const { return truncated_; }

 private:
  std::uint32_t snaplen_;
  std::uint64_t truncated_ = 0;
};

/// Per-flow aggregation over a net::FlowTable — an observer stage:
/// packets pass through unchanged while the table accumulates.  When an
/// idle timeout is configured, the stage sweeps the table as capture
/// timestamps advance and hands evicted flows to the exporter.
class AggregateStage final : public Stage {
 public:
  explicit AggregateStage(Nanos idle_timeout = Nanos::from_seconds(60));

  [[nodiscard]] std::string_view name() const override { return "aggregate"; }
  void process(engines::PacketBatch& batch) override;

  /// Receives flows evicted by the idle sweep.
  void set_exporter(net::FlowTable::Exporter exporter);

  [[nodiscard]] net::FlowTable& table() { return table_; }
  [[nodiscard]] const net::FlowTable& table() const { return table_; }

 private:
  net::FlowTable table_;
  net::FlowTable::Exporter exporter_;
  /// Latest capture timestamp seen; sweeps run at idle-timeout cadence
  /// against this virtual clock.
  Nanos high_water_{};
  Nanos next_sweep_{};
};

}  // namespace wirecap::pipeline
