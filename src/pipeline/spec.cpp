#include "pipeline/spec.hpp"

#include <charconv>
#include <stdexcept>
#include <string>

#include "pipeline/stages.hpp"

namespace wirecap::pipeline {

namespace {

[[noreturn]] void fail(std::string_view token, const std::string& why) {
  throw std::invalid_argument("pipeline spec: bad stage \"" +
                              std::string(token) + "\": " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::uint32_t parse_u32(std::string_view token, std::string_view text) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail(token, "expected an unsigned integer, got \"" + std::string(text) +
                    "\"");
  }
  return value;
}

void add_stage(Pipeline& pipeline, std::string_view token) {
  const std::size_t colon = token.find(':');
  const std::string_view name = trim(token.substr(0, colon));
  const std::string_view arg =
      colon == std::string_view::npos
          ? std::string_view{}
          : trim(token.substr(colon + 1));

  if (name == "filter") {
    if (arg.empty()) fail(token, "filter needs a BPF expression");
    try {
      pipeline.emplace<FilterStage>(std::string(arg));
    } catch (const std::exception& e) {  // bpf parse/compile errors
      fail(token, e.what());
    }
  } else if (name == "sample") {
    // "1/N" or "flow/N"
    const std::size_t slash = arg.find('/');
    if (slash == std::string_view::npos) {
      fail(token, "sample needs \"1/N\" or \"flow/N\"");
    }
    const std::string_view kind = trim(arg.substr(0, slash));
    const std::uint32_t n = parse_u32(token, trim(arg.substr(slash + 1)));
    if (n == 0) fail(token, "N must be >= 1");
    if (kind == "1") {
      pipeline.emplace<SampleStage>(SampleMode::kOneInN, n);
    } else if (kind == "flow") {
      pipeline.emplace<SampleStage>(SampleMode::kPerFlow, n);
    } else {
      fail(token, "sample kind must be \"1\" or \"flow\"");
    }
  } else if (name == "truncate") {
    if (arg.empty()) fail(token, "truncate needs a snaplen");
    const std::uint32_t snaplen = parse_u32(token, arg);
    if (snaplen == 0) fail(token, "snaplen must be >= 1");
    pipeline.emplace<TruncateStage>(snaplen);
  } else if (name == "aggregate") {
    if (arg.empty()) {
      pipeline.emplace<AggregateStage>();
    } else {
      const std::uint32_t idle_s = parse_u32(token, arg);
      if (idle_s == 0) fail(token, "idle timeout must be >= 1 second");
      pipeline.emplace<AggregateStage>(Nanos::from_seconds(idle_s));
    }
  } else {
    fail(token, "unknown stage (expected filter / sample / truncate / "
                "aggregate)");
  }
}

}  // namespace

Pipeline parse_pipeline_spec(std::string_view spec) {
  Pipeline pipeline;
  while (!spec.empty()) {
    const std::size_t bar = spec.find('|');
    const std::string_view token =
        trim(bar == std::string_view::npos ? spec : spec.substr(0, bar));
    spec = bar == std::string_view::npos ? std::string_view{}
                                         : spec.substr(bar + 1);
    if (token.empty()) continue;
    add_stage(pipeline, token);
  }
  return pipeline;
}

}  // namespace wirecap::pipeline
