// An ordered chain of Stages applied to each batch between capture and
// delivery.  The pipeline owns its stages; run() applies them front to
// back and stops early once a stage has compacted the batch to zero
// packets (later filters cannot resurrect anything — but the batch's
// refs still carry the release obligations to done_batch()).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/stage.hpp"
#include "telemetry/telemetry.hpp"

namespace wirecap::pipeline {

class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Appends a stage; returns it for configuration chaining.
  Stage& add(std::unique_ptr<Stage> stage);

  /// Emplaces a stage of concrete type `S`.
  template <typename S, typename... Args>
  S& emplace(Args&&... args) {
    auto stage = std::make_unique<S>(std::forward<Args>(args)...);
    S& ref = *stage;
    add(std::move(stage));
    return ref;
  }

  /// Runs every stage over `batch` in order (early-out on empty).
  void run(engines::PacketBatch& batch);

  [[nodiscard]] std::size_t size() const { return stages_.size(); }
  [[nodiscard]] bool empty() const { return stages_.empty(); }
  [[nodiscard]] const std::vector<std::unique_ptr<Stage>>& stages() const {
    return stages_;
  }

  /// First stage with the given name() (nullptr when absent) — how the
  /// harness reaches the aggregate stage's FlowTable after a spec parse.
  [[nodiscard]] Stage* find(std::string_view name);

  [[nodiscard]] std::uint64_t batches() const { return batches_; }
  [[nodiscard]] std::uint64_t packets_in() const { return packets_in_; }
  [[nodiscard]] std::uint64_t packets_out() const { return packets_out_; }

  /// Registers `<prefix>.<stage>.{batches,packets_in,packets_out,dropped}`
  /// per stage plus the pipeline totals under `<prefix>`.  Stages with
  /// duplicate names get an ordinal suffix (`filter`, `filter2`, ...).
  /// The pipeline must outlive `telemetry` reads (counters are bound).
  void bind_telemetry(telemetry::Telemetry& telemetry,
                      const std::string& prefix) const;

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  std::uint64_t batches_ = 0;
  std::uint64_t packets_in_ = 0;
  std::uint64_t packets_out_ = 0;
};

}  // namespace wirecap::pipeline
