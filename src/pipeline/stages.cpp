#include "pipeline/stages.hpp"

#include <algorithm>

#include "bpf/codegen.hpp"
#include "net/headers.hpp"

namespace wirecap::pipeline {

FilterStage::FilterStage(const std::string& expression)
    : filter_(bpf::compile_filter(expression)) {}

FilterStage::FilterStage(const bpf::Program& program) : filter_(program) {}

void FilterStage::process(engines::PacketBatch& batch) {
  const std::size_t in = batch.views.size();
  if (in != 0) {
    filter_.run_batch(batch, accepts_);
    compact_views(batch, [this](std::size_t i, const engines::CaptureView&) {
      return accepts_[i] != 0;
    });
  }
  account(in, batch.views.size());
}

SampleStage::SampleStage(SampleMode mode, std::uint32_t n)
    : mode_(mode), n_(n) {
  if (n_ == 0) n_ = 1;
}

void SampleStage::process(engines::PacketBatch& batch) {
  const std::size_t in = batch.views.size();
  if (n_ > 1 && in != 0) {
    if (mode_ == SampleMode::kOneInN) {
      compact_views(batch,
                    [this](std::size_t, const engines::CaptureView&) {
                      return counter_++ % n_ == 0;
                    });
    } else {
      compact_views(batch,
                    [this](std::size_t, const engines::CaptureView& view) {
                      const std::optional<net::FlowKey> flow =
                          net::parse_flow(view.bytes);
                      const std::uint64_t key = flow ? flow->mix() : view.seq;
                      return key % n_ == 0;
                    });
    }
  }
  account(in, batch.views.size());
}

TruncateStage::TruncateStage(std::uint32_t snaplen) : snaplen_(snaplen) {}

void TruncateStage::process(engines::PacketBatch& batch) {
  const std::size_t in = batch.views.size();
  for (engines::CaptureView& view : batch.views) {
    if (view.bytes.size() > snaplen_) {
      view.bytes = view.bytes.first(snaplen_);
      ++truncated_;
    }
  }
  account(in, in);
}

AggregateStage::AggregateStage(Nanos idle_timeout) : table_(idle_timeout) {}

void AggregateStage::set_exporter(net::FlowTable::Exporter exporter) {
  exporter_ = std::move(exporter);
}

void AggregateStage::process(engines::PacketBatch& batch) {
  const std::size_t in = batch.views.size();
  for (const engines::CaptureView& view : batch.views) {
    table_.update(view);
    high_water_ = std::max(high_water_, view.timestamp);
  }
  if (next_sweep_.count() == 0) {
    // First traffic seen: anchor the sweep cadence to the capture clock.
    next_sweep_ = high_water_ + table_.idle_timeout();
  } else if (high_water_ >= next_sweep_) {
    table_.sweep_idle(high_water_, exporter_);
    next_sweep_ = high_water_ + table_.idle_timeout();
  }
  account(in, in);
}

}  // namespace wirecap::pipeline
