// Textual pipeline specs — how the experiment harness's --pipeline flag
// builds a stage chain:
//
//   stage ("|" stage)*
//   stage := "filter:" <bpf expression>
//          | "sample:1/" <N>          (keep every Nth packet)
//          | "sample:flow/" <N>       (keep 1-in-N whole flows)
//          | "truncate:" <snaplen>
//          | "aggregate" [":" <idle seconds>]
//
// e.g.  --pipeline "filter:tcp port 80|sample:1/8|truncate:96|aggregate"
#pragma once

#include <string_view>

#include "pipeline/pipeline.hpp"

namespace wirecap::pipeline {

/// Builds a Pipeline from a spec string.  Throws std::invalid_argument
/// on unknown stage names, malformed arguments, or an invalid BPF
/// expression (with the offending token in the message).  An empty or
/// all-whitespace spec yields an empty pipeline.
[[nodiscard]] Pipeline parse_pipeline_spec(std::string_view spec);

}  // namespace wirecap::pipeline
