// Zero-copy fan-out of one capture stream to multiple subscribers.
//
// FanOut is a pipeline terminal: offer() takes one delivered batch and
// steers its views to N subscribers — broadcast (everyone sees every
// packet), flow-hash partitioning (a flow's packets always land on the
// same subscriber), or per-subscriber BPF match.  The packet bytes are
// never copied: every subscriber's SharedBatch aliases the same capture
// chunk, and the chunk recycles only after the LAST subscriber releases.
//
// Two refcounting modes, picked per batch:
//
//  * Engine-share mode (engines with supports_batch_shares(), i.e.
//    WireCAP): offer() grants one extra release share per receiving
//    subscriber via add_batch_shares(), hands each subscriber a copy of
//    the batch's refs, and releases the original immediately.  Each
//    subscriber then releases *independently* through the normal
//    done_batch() path — the engine's per-chunk refcount (mirrored into
//    the ring-buffer-pool's share counts, audited by the lifecycle
//    auditor) fires the recycle on the last one.  Nothing is held in
//    the FanOut; subscribers may outlive it in any order.
//
//  * Slot fallback (baseline engines): the FanOut parks the original
//    batch in a slot with a pending-release count; subscribers' batches
//    carry no refs, and the last SharedBatch release triggers the one
//    real done_batch().  Semantically identical, but the release
//    funnels through the FanOut.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bpf/insn.hpp"
#include "bpf/predecode.hpp"
#include "engines/engine.hpp"
#include "engines/packet_view.hpp"
#include "telemetry/telemetry.hpp"

namespace wirecap::pipeline {

class FanOut;

/// How offer() assigns views to subscribers.
enum class Steering : std::uint8_t {
  /// Every subscriber receives every packet (IDS + flow stats + spool
  /// all observing the same stream).
  kBroadcast,
  /// Each packet goes to exactly one subscriber by FlowKey::mix() %
  /// subscriber-count (seq-based fallback for unparseable packets), so
  /// per-flow state never splits across subscribers.
  kFlowHash,
  /// Each subscriber receives the packets matching its BPF program
  /// (subscribers without a program match everything).  Packets
  /// matching no subscriber are released immediately.
  kBpfMatch,
};

/// A subscriber's view of one fanned-out batch: a move-only release
/// handle whose views alias the capture chunk (zero-copy).  Releasing
/// (explicitly or via destruction) drops this subscriber's reference;
/// the chunk recycles when the last reference across all subscribers is
/// gone.  A SharedBatch may be moved into longer-lived storage to
/// retain the chunk beyond the handler call.
class SharedBatch {
 public:
  SharedBatch() = default;
  SharedBatch(SharedBatch&& other) noexcept { *this = std::move(other); }
  SharedBatch& operator=(SharedBatch&& other) noexcept;
  SharedBatch(const SharedBatch&) = delete;
  SharedBatch& operator=(const SharedBatch&) = delete;
  ~SharedBatch() { release(); }

  [[nodiscard]] engines::PacketBatch& batch() { return batch_; }
  [[nodiscard]] const engines::PacketBatch& batch() const { return batch_; }
  [[nodiscard]] std::uint32_t queue() const { return queue_; }
  [[nodiscard]] bool holds() const { return owner_ != nullptr; }

  /// Drops this subscriber's reference (idempotent).
  void release();

 private:
  friend class FanOut;
  SharedBatch(FanOut* owner, std::uint32_t queue, std::uint64_t slot)
      : owner_(owner), queue_(queue), slot_(slot) {}

  FanOut* owner_ = nullptr;
  std::uint32_t queue_ = 0;
  /// 0 = engine-share mode (batch_.refs carry the release); otherwise
  /// the slot id holding the original batch in the FanOut.
  std::uint64_t slot_ = 0;
  engines::PacketBatch batch_;
};

struct Subscriber {
  std::string name;
  /// Receives this subscriber's share of each batch.  The handler owns
  /// the SharedBatch: dropping it releases, moving it out retains.
  std::function<void(SharedBatch)> handler;
  /// Steering::kBpfMatch only; nullopt matches everything.
  std::optional<bpf::Program> match;
};

struct SubscriberStats {
  std::uint64_t batches = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  // wire bytes steered to this subscriber
};

class FanOut {
 public:
  FanOut(engines::CaptureEngine& engine, Steering steering);

  /// Registers a subscriber; returns its index.  Must be called before
  /// the first offer().
  std::size_t subscribe(Subscriber subscriber);

  /// Steers one delivered batch to the subscribers and releases
  /// whatever they do not take.  Consumes the batch: the caller must
  /// not touch it (beyond clear()) afterwards, and must NOT call
  /// done_batch() on it — release is the FanOut's job from here on.
  void offer(std::uint32_t queue, engines::PacketBatch&& batch);

  [[nodiscard]] std::size_t subscriber_count() const { return subs_.size(); }
  [[nodiscard]] Steering steering() const { return steering_; }
  [[nodiscard]] bool uses_engine_shares() const {
    return engine_.supports_batch_shares();
  }
  [[nodiscard]] const SubscriberStats& subscriber_stats(std::size_t i) const {
    return subs_[i].stats;
  }

  [[nodiscard]] std::uint64_t offers() const { return offers_; }
  /// Batches no subscriber wanted (released straight back).
  [[nodiscard]] std::uint64_t unclaimed() const { return unclaimed_; }
  /// SharedBatch releases seen so far.
  [[nodiscard]] std::uint64_t releases() const { return releases_; }
  /// Extra release shares granted through the engine.
  [[nodiscard]] std::uint64_t shares_granted() const {
    return shares_granted_;
  }
  /// Slot-mode batches currently awaiting their last release.
  [[nodiscard]] std::size_t slots_in_flight() const { return slots_.size(); }

  /// Registers `<prefix>.{offers,unclaimed,releases,shares_granted}` and
  /// `<prefix>.sub.<name>.{batches,packets,bytes}`.
  void bind_telemetry(telemetry::Telemetry& telemetry,
                      const std::string& prefix) const;

 private:
  struct Sub {
    Subscriber config;
    std::optional<bpf::Predecoded> matcher;  // pre-decoded config.match
    SubscriberStats stats;
  };
  struct Slot {
    engines::PacketBatch original;
    std::uint32_t queue = 0;
    std::uint32_t remaining = 0;  // SharedBatch releases still pending
  };

  friend class SharedBatch;
  void release_shared(SharedBatch& shared);
  static void note_delivery(Sub& sub, const engines::PacketBatch& batch);

  engines::CaptureEngine& engine_;
  Steering steering_;
  std::vector<Sub> subs_;
  /// Per-subscriber steering scratch, reused across offers.
  std::vector<std::vector<engines::CaptureView>> scratch_;
  std::vector<std::uint8_t> accepts_;  // kBpfMatch scratch
  std::unordered_map<std::uint64_t, Slot> slots_;
  std::uint64_t next_slot_ = 1;  // 0 is the engine-share sentinel
  std::uint64_t offers_ = 0;
  std::uint64_t unclaimed_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t shares_granted_ = 0;
};

}  // namespace wirecap::pipeline
