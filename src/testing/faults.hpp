// Deterministic fault injection for the WireCAP data path.
//
// A FaultPlan is a seeded, pre-generated schedule of adversities aimed
// at the chunk lifecycle: application threads that stall or withhold
// recycles, TX-ring-full bursts on the forwarding path, forced pool
// exhaustion, partial-chunk-timeout storms, and close()/open() cycles
// racing application-held chunks.  The FaultHarness builds a full
// fabric (scheduler, NIC, WireCAP engine in advanced mode), attaches a
// ChunkLifecycleAuditor to every pool, executes the plan over
// background traffic, and audits the conservation law at a fixed
// virtual-time cadence.  Everything derives from the single seed, so a
// violating seed replays bit-for-bit.
//
// run_fault_soak() sweeps consecutive seeds — the regression gate the
// CI sanitizer job runs.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/handoff.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "engines/engine.hpp"
#include "net/flow.hpp"
#include "sim/bus.hpp"
#include "sim/costs.hpp"
#include "sim/scheduler.hpp"
#include "store/spool.hpp"
#include "telemetry/telemetry.hpp"
#include "testing/lifecycle_auditor.hpp"

namespace wirecap::nic {
class MultiQueueNic;
}
namespace wirecap::core {
class WirecapEngine;
}
namespace wirecap::sim {
class SimCore;
}

namespace wirecap::testing {

enum class FaultKind : std::uint8_t {
  kDelayedRecycle,  // app defers done() on a batch of packets briefly
  kWithheldRecycle, // app sits on packets for a long time (near-leak)
  kAppStall,        // app thread stops consuming entirely for a while
  kTxBurst,         // burst of zero-copy forwards at a tiny TX ring
  kPoolExhaust,     // app holds everything it can until the pool drains
  kTimeoutStorm,    // sub-chunk trickle bursts forcing partial rescues
  kQueueReopen,     // close() + later open() while chunks are in flight
  kSlowDisk,        // one spool shard's disk slows by `magnitude`x
  kDiskFull,        // one spool shard's disk reports ENOSPC for a while
  kTenantExhaust,   // every queue of the hit tenant holds chunks at once
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  Nanos at = Nanos::zero();
  FaultKind kind = FaultKind::kAppStall;
  std::uint32_t queue = 0;
  Nanos duration = Nanos::zero();
  std::uint32_t magnitude = 0;  // views / packets / bursts, per kind
};

struct FaultPlanConfig {
  std::uint64_t seed = 1;
  /// Virtual-time window faults are scheduled in (traffic also stops
  /// here; the harness then drains).
  Nanos horizon = Nanos::from_millis(3);
  std::uint32_t num_queues = 2;
  std::uint32_t event_count = 24;
  /// Close/open cycles are the most invasive adversity; tests that
  /// want a steady-state-only schedule turn them off.
  bool allow_reopen = true;
  /// Adds the simulated-disk adversities (kSlowDisk / kDiskFull) to the
  /// schedule — only meaningful with FaultHarnessConfig::spool.
  bool spool_faults = false;
  /// Tenants sharing the NIC: the queues are partitioned into
  /// `num_tenants` contiguous slices, each registered as its own
  /// TenantSpec/buddy group.  >1 adds kTenantExhaust to the schedule
  /// and enables the per-tenant conservation audit.
  std::uint32_t num_tenants = 1;
  /// Restricts fault targeting to queues [0, fault_queue_limit); 0 hits
  /// every queue.  The isolation soaks aim all adversity at tenant 0's
  /// queues and assert tenant 1's delivery is untouched.
  std::uint32_t fault_queue_limit = 0;
};

class FaultPlan {
 public:
  /// Expands `config.seed` into a time-sorted adversity schedule.
  [[nodiscard]] static FaultPlan generate(const FaultPlanConfig& config);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::vector<FaultEvent> events_;
  std::uint64_t seed_ = 0;
};

struct FaultHarnessConfig {
  FaultPlanConfig plan;
  // Small geometry so adversities actually bite: a 12-chunk pool
  // exhausts, an 8-cell chunk rescues, a 4-slot TX ring fills.
  std::uint32_t cells_per_chunk = 8;
  std::uint32_t chunk_count = 12;
  std::uint32_t rx_ring_size = 32;
  std::uint32_t tx_ring_size = 4;
  /// Advanced mode (buddy offloading) puts chunks on foreign capture
  /// queues — the paths close() must sweep.
  bool advanced_mode = true;
  /// Handoff implementation under test.  Defaults to the engine's
  /// lock-free fast path so the conservation soaks prove the SPSC ring
  /// + steal inbox under every fault; set kMutex to soak the blocking
  /// MpmcQueue pair.
  HandoffMode handoff = HandoffMode::kLockFree;
  /// Per-tenant chunk quota handed to every registered TenantSpec
  /// (0 = uncapped).  Only meaningful with plan.num_tenants > 1, where
  /// it is what makes a stalled tenant exhaust *its own* budget while
  /// its neighbours keep capturing.
  std::uint32_t tenant_quota = 0;
  /// Mean inter-arrival of background traffic, per queue.
  Nanos mean_gap = Nanos::from_micros(2);
  /// Cadence of the conservation audit.
  Nanos check_interval = Nanos::from_micros(25);
  /// Settling time after the horizon before the final audit.
  Nanos drain = Nanos::from_millis(1);
  /// Fail at the violating call site instead of collecting (the soak
  /// collects so one bad seed reports all its violations).
  bool throw_on_violation = false;
  /// Capture-to-disk mode: the per-queue applications consume whole
  /// chunks and spool them (one shard per queue) instead of per-packet
  /// done(); after the drain the run merges the spool back and checks
  /// the round-trip conservation law (every consumed packet on disk
  /// exactly once, in global timestamp order, minus counted losses).
  bool spool = false;
  store::BackpressurePolicy spool_policy = store::BackpressurePolicy::kBlock;
  /// Spool target; empty picks a per-seed temp directory.
  std::filesystem::path spool_dir;
  /// Chunk-journey latency tracking + flight recorder: outliers above
  /// the threshold are retained for post-run inspection (tests read
  /// them through telemetry().latency.recorder()).
  bool latency = false;
  Nanos latency_outlier_threshold = Nanos::from_micros(100);
};

/// Round-trip accounting of one spooled fault run.
struct SpoolRunSummary {
  std::filesystem::path dir;
  /// Packets consumed from the engine and still owed to the store
  /// (consumed minus counted drops/evictions).
  std::uint64_t packets_expected = 0;
  /// Packets the merged StoreReader stream produced.
  std::uint64_t packets_merged = 0;
  /// Packets lost to drop policies / ring-close evictions (counted).
  std::uint64_t packets_lost = 0;
  std::uint64_t segments = 0;
  /// Merged-stream records whose timestamp went backwards.
  std::uint64_t order_violations = 0;
  /// Missing, duplicated, unidentified or unexpected packets.
  std::uint64_t conservation_failures = 0;
  std::vector<std::string> problems;
  [[nodiscard]] bool clean() const {
    return order_violations == 0 && conservation_failures == 0;
  }
};

struct FaultRunResult {
  std::uint64_t seed = 0;
  AuditorStats auditor;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t reopens = 0;
  /// done() calls that landed after the owning queue had closed —
  /// exercised epoch-drop paths.
  std::uint64_t late_releases = 0;
  /// Delivered packets split by queue and by tenant (the partition of
  /// FaultPlanConfig::num_tenants) — the isolation soaks compare a
  /// victim tenant's slice across baseline and faulted runs.
  std::vector<std::uint64_t> queue_delivered;
  std::vector<std::uint64_t> tenant_delivered;
  std::vector<std::string> violations;
  /// Present when the harness ran in spool mode.
  std::optional<SpoolRunSummary> spool;
  [[nodiscard]] bool clean() const {
    return auditor.violations == 0 && (!spool || spool->clean());
  }
};

/// One deterministic fault-injection run: fabric + plan + auditor.
class FaultHarness {
 public:
  explicit FaultHarness(FaultHarnessConfig config);
  ~FaultHarness();

  FaultRunResult run();

  [[nodiscard]] const ChunkLifecycleAuditor& auditor() const {
    return auditor_;
  }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const {
    return telemetry_;
  }

 private:
  struct HeldView {
    engines::CaptureView view;
    std::uint32_t queue = 0;
    Nanos release_at = Nanos::zero();
  };

  struct AppState {
    Nanos stall_until = Nanos::zero();
    Nanos exhaust_until = Nanos::zero();
    std::uint32_t delay_remaining = 0;  // views still to be delayed
    Nanos delay_for = Nanos::zero();
    std::uint32_t tx_burst_remaining = 0;
    std::deque<HeldView> held;
    std::uint64_t seq = 0;  // traffic sequence numbers
  };

  struct HeldChunk {
    engines::ChunkCaptureView chunk;
    Nanos release_at = Nanos::zero();
  };

  void open_queue(std::uint32_t queue);
  void rebind_buddies();
  /// The contiguous-slice tenant partition (matches the registration in
  /// rebind_buddies and the tenant_delivered aggregation).
  [[nodiscard]] std::uint32_t tenant_of(std::uint32_t queue) const;
  void apply(const FaultEvent& event);
  void schedule_traffic(std::uint32_t queue, Nanos at);
  void app_poll(std::uint32_t queue);
  void consume(std::uint32_t queue, const engines::CaptureView& view);
  void release_due(std::uint32_t queue);
  void audit_tick();
  /// Per-tenant conservation over every fully-open tenant.
  void audit_tenants();
  // --- spool mode ---
  void spool_poll(std::uint32_t queue);
  void offer_chunk(std::uint32_t queue, engines::ChunkCaptureView&& chunk);
  void release_due_chunks(std::uint32_t queue);
  /// Pre-close teardown: pulls ring-owned chunks out of every shard
  /// queue and out of the applications' held lists (their cells dangle
  /// once the pool is torn down).
  void evict_ring_from_spool(std::uint32_t ring);
  void drain_spool();
  [[nodiscard]] SpoolRunSummary verify_spool();

  FaultHarnessConfig config_;
  FaultPlan plan_;
  Xoshiro256 rng_;
  /// Per-queue traffic/poll-jitter streams, seeded from (seed, queue):
  /// a fault that burns shared-RNG draws on tenant A's queues must not
  /// reshuffle tenant B's workload, or the isolation comparison between
  /// a baseline and a faulted run measures RNG drift, not interference.
  std::vector<Xoshiro256> queue_rngs_;
  sim::Scheduler scheduler_;
  /// Shared by the engine and the spool shards (which hold a reference).
  sim::CostModel costs_;
  sim::IoBus bus_;
  telemetry::Telemetry telemetry_;
  ChunkLifecycleAuditor auditor_;
  std::unique_ptr<nic::MultiQueueNic> nic_;
  std::unique_ptr<core::WirecapEngine> engine_;
  std::vector<std::unique_ptr<sim::SimCore>> app_cores_;
  std::vector<AppState> apps_;
  std::vector<bool> queue_open_;
  std::vector<std::vector<net::FlowKey>> flows_;
  Nanos end_of_run_ = Nanos::zero();
  std::uint64_t forwarded_ = 0;
  std::uint64_t reopens_ = 0;
  std::uint64_t late_releases_ = 0;
  // --- spool mode ---
  std::unique_ptr<store::Spool> spool_;
  std::filesystem::path spool_dir_;
  std::vector<std::deque<HeldChunk>> held_chunks_;  // per consuming queue
  /// Seqs consumed from the engine and owed to the store; shrinks when
  /// a loss is counted (drop policy, ring-close eviction).
  std::unordered_set<std::uint64_t> expected_seqs_;
  std::uint64_t spool_lost_ = 0;  // held-chunk evictions (harness-side)
};

struct SoakResult {
  std::uint32_t seeds_run = 0;
  std::uint32_t seeds_clean = 0;
  std::uint64_t total_violations = 0;
  std::uint64_t total_transitions = 0;
  std::uint64_t total_conservation_checks = 0;
  std::uint64_t total_tenant_checks = 0;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_reopens = 0;
  /// Spool-mode totals (zero when the soak ran without a spool).
  std::uint64_t total_spooled = 0;
  std::uint64_t total_spool_lost = 0;
  std::uint64_t total_spool_failures = 0;
  /// "seed N: <first violation>" per dirty seed.
  std::vector<std::string> failures;
  [[nodiscard]] bool clean() const {
    return total_violations == 0 && total_spool_failures == 0;
  }
};

/// Runs the harness over `count` consecutive seeds starting at
/// `first_seed`, with `base` supplying everything but the seed.
[[nodiscard]] SoakResult run_fault_soak(std::uint64_t first_seed,
                                        std::uint32_t count,
                                        FaultHarnessConfig base = {});

}  // namespace wirecap::testing
