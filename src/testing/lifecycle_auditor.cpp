#include "testing/lifecycle_auditor.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "core/wirecap_engine.hpp"

namespace wirecap::testing {
namespace {

/// The legal edges of the chunk state machine, by the operation that
/// commits them.  Anything else is a lifecycle violation.
const char* expected_cause(driver::ChunkState from, driver::ChunkState to) {
  using driver::ChunkState;
  if (from == ChunkState::kFree && to == ChunkState::kAttached) {
    return "attach";
  }
  if (from == ChunkState::kAttached && to == ChunkState::kCaptured) {
    return "capture";
  }
  if (from == ChunkState::kFree && to == ChunkState::kCaptured) {
    return "rescue";
  }
  if (from == ChunkState::kCaptured && to == ChunkState::kFree) {
    return "recycle";
  }
  if (from == ChunkState::kAttached && to == ChunkState::kFree) {
    return "release";
  }
  return nullptr;
}

std::string pool_tag(const driver::RingBufferPool& pool) {
  std::ostringstream out;
  out << "pool{nic " << pool.nic_id() << ", ring " << pool.ring_id()
      << ", uid " << pool.uid() << "}";
  return out.str();
}

}  // namespace

ChunkLifecycleAuditor::ChunkLifecycleAuditor(AuditorConfig config)
    : config_(config) {}

ChunkLifecycleAuditor::Shadow& ChunkLifecycleAuditor::shadow_for(
    const driver::RingBufferPool& pool, driver::ChunkState seen_now,
    std::uint32_t chunk_id, bool* first_sight) {
  auto [it, inserted] = shadows_.try_emplace(pool.uid());
  *first_sight = inserted;
  Shadow& shadow = it->second;
  if (inserted) {
    // The auditor may be attached to a pool mid-life (set_pool_observer
    // on an already-open engine): seed the shadow from the pool's own
    // view, which already includes the transition being reported.
    shadow.states.resize(pool.chunk_count());
    for (std::uint32_t c = 0; c < pool.chunk_count(); ++c) {
      shadow.states[c] = pool.state(c);
    }
    if (chunk_id < shadow.states.size()) shadow.states[chunk_id] = seen_now;
  }
  return shadow;
}

void ChunkLifecycleAuditor::violation(const driver::RingBufferPool& pool,
                                      std::uint32_t chunk_id,
                                      const std::string& message) {
  ++stats_.violations;
  std::ostringstream out;
  out << pool_tag(pool) << " chunk " << chunk_id << ": " << message;
  const std::string text = out.str();
  if (violation_log_.size() < config_.max_recorded_violations) {
    violation_log_.push_back(text);
  }
  if (tracer_ && tracer_->enabled() && clock_) {
    tracer_->instant("auditor.violation", "auditor", clock_(), pool.ring_id(),
                     "chunk", chunk_id, "count", stats_.violations);
  }
  if (config_.throw_on_violation) {
    throw std::logic_error("ChunkLifecycleAuditor: " + text);
  }
}

void ChunkLifecycleAuditor::on_transition(const driver::RingBufferPool& pool,
                                          std::uint32_t chunk_id,
                                          driver::ChunkState from,
                                          driver::ChunkState to,
                                          const char* cause) {
  ++stats_.transitions;
  if (chunk_id >= pool.chunk_count()) {
    violation(pool, chunk_id, "transition for out-of-range chunk id");
    return;
  }

  bool first_sight = false;
  Shadow& shadow = shadow_for(pool, to, chunk_id, &first_sight);
  if (!first_sight && shadow.states[chunk_id] != from) {
    // The caller believes the chunk was in `from`, but its shadowed
    // history says otherwise: a use-after-recycle or a transition that
    // bypassed the pool (stale metadata acting on a reused chunk id).
    violation(pool, chunk_id,
              std::string("transition ") + to_string(from) + " -> " +
                  to_string(to) + " (" + cause + ") but shadow state is " +
                  to_string(shadow.states[chunk_id]));
    shadow.states[chunk_id] = to;  // resync so one bug reports once
    return;
  }

  const char* expected = expected_cause(from, to);
  if (expected == nullptr) {
    violation(pool, chunk_id,
              std::string("illegal edge ") + to_string(from) + " -> " +
                  to_string(to) + " (" + cause + ")");
  } else if (std::strcmp(expected, cause) != 0) {
    violation(pool, chunk_id,
              std::string("edge ") + to_string(from) + " -> " + to_string(to) +
                  " attributed to '" + cause + "', expected '" + expected +
                  "'");
  }
  shadow.states[chunk_id] = to;

  if (std::strcmp(cause, "attach") == 0) ++stats_.attaches;
  else if (std::strcmp(cause, "capture") == 0) ++stats_.captures;
  else if (std::strcmp(cause, "rescue") == 0) ++stats_.rescues;
  else if (std::strcmp(cause, "recycle") == 0) ++stats_.recycles;
  else if (std::strcmp(cause, "release") == 0) ++stats_.releases;
}

void ChunkLifecycleAuditor::on_recycle_reject(
    const driver::RingBufferPool& pool, const driver::ChunkMeta& meta,
    StatusCode code) {
  ++stats_.recycle_rejects;
  // Rejects are the validation layer *working* (double recycles and
  // forged metadata must bounce), so they are counted, not flagged.
  // The exception: a reject of a chunk the shadow believes is captured
  // and whose coordinates match this pool means valid metadata bounced
  // — a lost chunk in the making.
  const auto it = shadows_.find(pool.uid());
  if (it == shadows_.end()) return;
  if (meta.nic_id != pool.nic_id() || meta.ring_id != pool.ring_id()) return;
  if (meta.chunk_id >= it->second.states.size()) return;
  if (it->second.states[meta.chunk_id] == driver::ChunkState::kCaptured &&
      code == StatusCode::kInvalidArgument && meta.pkt_count > 0 &&
      meta.first_cell + meta.pkt_count <= pool.cells_per_chunk()) {
    violation(pool, meta.chunk_id,
              "recycle of a captured chunk with in-range metadata rejected");
  }
}

void ChunkLifecycleAuditor::on_shares(const driver::RingBufferPool& pool,
                                      std::uint32_t chunk_id,
                                      std::int64_t delta, std::uint32_t now) {
  if (delta > 0) {
    stats_.share_grants += static_cast<std::uint64_t>(delta);
  } else {
    stats_.share_releases += static_cast<std::uint64_t>(-delta);
  }
  if (chunk_id >= pool.chunk_count()) {
    violation(pool, chunk_id, "share change for out-of-range chunk id");
    return;
  }
  bool first_sight = false;
  Shadow& shadow = shadow_for(pool, pool.state(chunk_id), chunk_id,
                              &first_sight);
  if (shadow.shares.size() < pool.chunk_count()) {
    shadow.shares.resize(pool.chunk_count(), 0);
  }
  if (shadow.states[chunk_id] != driver::ChunkState::kCaptured) {
    violation(pool, chunk_id,
              std::string("share change on a ") +
                  to_string(shadow.states[chunk_id]) + " chunk");
  }
  const std::int64_t expected =
      static_cast<std::int64_t>(shadow.shares[chunk_id]) + delta;
  if (expected < 0 || expected != static_cast<std::int64_t>(now)) {
    violation(pool, chunk_id,
              "share count " + std::to_string(now) + " disagrees with shadow " +
                  std::to_string(shadow.shares[chunk_id]) + " + delta " +
                  std::to_string(delta));
  }
  shadow.shares[chunk_id] = now;
}

void ChunkLifecycleAuditor::check_pool(const driver::RingBufferPool& pool) {
  const driver::ChunkStateCounts counts = pool.state_counts();
  if (counts.free + counts.attached + counts.captured != pool.chunk_count()) {
    violation(pool, 0,
              "state populations do not sum to R (free " +
                  std::to_string(counts.free) + " + attached " +
                  std::to_string(counts.attached) + " + captured " +
                  std::to_string(counts.captured) + " != " +
                  std::to_string(pool.chunk_count()) + ")");
  }
  if (counts.free != pool.free_chunks()) {
    violation(pool, 0,
              "free list length " + std::to_string(pool.free_chunks()) +
                  " disagrees with free state count " +
                  std::to_string(counts.free));
  }
  const auto it = shadows_.find(pool.uid());
  if (it == shadows_.end()) return;  // never saw a transition yet
  for (std::uint32_t c = 0; c < pool.chunk_count(); ++c) {
    if (it->second.states[c] != pool.state(c)) {
      violation(pool, c,
                std::string("shadow state ") + to_string(it->second.states[c]) +
                    " disagrees with pool state " + to_string(pool.state(c)) +
                    " (a transition bypassed the observer)");
    }
    const std::uint32_t shares = c < it->second.shares.size()
                                     ? it->second.shares[c]
                                     : 0;
    if (shares != pool.extra_shares(c)) {
      violation(pool, c,
                "shadow share count " + std::to_string(shares) +
                    " disagrees with pool share count " +
                    std::to_string(pool.extra_shares(c)));
    }
    if (shares != 0 && pool.state(c) != driver::ChunkState::kCaptured) {
      violation(pool, c,
                std::string("fan-out shares outstanding on a ") +
                    to_string(pool.state(c)) + " chunk");
    }
  }
}

void ChunkLifecycleAuditor::check_conservation(
    const core::WirecapEngine& engine, std::uint32_t ring) {
  ++stats_.conservation_checks;
  const driver::RingBufferPool& pool = engine.pool(ring);
  check_pool(pool);
  const driver::ChunkStateCounts counts = pool.state_counts();
  const core::WirecapEngine::CapturedCensus census =
      engine.captured_census(ring);
  if (census.total() != counts.captured) {
    violation(pool, 0,
              "conservation: pool holds " + std::to_string(counts.captured) +
                  " captured chunks but the engine accounts for " +
                  std::to_string(census.total()) + " (capture queues " +
                  std::to_string(census.in_capture_queues) + ", pending " +
                  std::to_string(census.in_pending) + ", recycle queue " +
                  std::to_string(census.in_recycle_queue) + ", outstanding " +
                  std::to_string(census.outstanding) + ")");
  }
}

void ChunkLifecycleAuditor::tenant_violation(engines::TenantId tenant,
                                             const std::string& message) {
  ++stats_.violations;
  const std::string text =
      "tenant " + std::to_string(tenant) + ": " + message;
  if (violation_log_.size() < config_.max_recorded_violations) {
    violation_log_.push_back(text);
  }
  if (tracer_ && tracer_->enabled() && clock_) {
    tracer_->instant("auditor.tenant_violation", "auditor", clock_(), tenant,
                     "count", stats_.violations);
  }
  if (config_.throw_on_violation) {
    throw std::logic_error("ChunkLifecycleAuditor: " + text);
  }
}

void ChunkLifecycleAuditor::check_tenant_conservation(
    const core::WirecapEngine& engine, engines::TenantId tenant) {
  ++stats_.tenant_checks;
  const core::WirecapEngine::TenantCensus census =
      engine.tenant_census(tenant);
  if (census.account_charged != census.queue_charged ||
      census.account_charged != census.pool_captured ||
      census.account_charged != census.engine_census) {
    tenant_violation(
        tenant,
        "per-tenant conservation: account charged " +
            std::to_string(census.account_charged) + ", queue charged " +
            std::to_string(census.queue_charged) + ", pool captured " +
            std::to_string(census.pool_captured) + ", engine census " +
            std::to_string(census.engine_census) + " disagree");
  }
}

void ChunkLifecycleAuditor::bind_telemetry(telemetry::Telemetry& telemetry,
                                           const std::string& prefix,
                                           std::function<Nanos()> clock) {
  tracer_ = &telemetry.tracer;
  clock_ = std::move(clock);
  const std::string p = prefix + ".auditor.";
  telemetry.registry.bind_counter(p + "transitions",
                                  [this] { return stats_.transitions; });
  telemetry.registry.bind_counter(p + "violations",
                                  [this] { return stats_.violations; });
  telemetry.registry.bind_counter(p + "recycle_rejects",
                                  [this] { return stats_.recycle_rejects; });
  telemetry.registry.bind_counter(p + "share_grants",
                                  [this] { return stats_.share_grants; });
  telemetry.registry.bind_counter(p + "share_releases",
                                  [this] { return stats_.share_releases; });
  telemetry.registry.bind_counter(p + "conservation_checks",
                                  [this] { return stats_.conservation_checks; });
  telemetry.registry.bind_counter(p + "tenant_checks",
                                  [this] { return stats_.tenant_checks; });
  telemetry.registry.bind_gauge(p + "tracked_pools", [this] {
    return static_cast<double>(shadows_.size());
  });
}

}  // namespace wirecap::testing
