// Differential oracle for the three BPF filter implementations.
//
// The repo carries four independent answers to "does this packet match
// this filter": the semantic evaluator (bpf/eval.cpp), the classic-BPF
// interpreter (bpf/vm.cpp) running compiler output (bpf/codegen.cpp),
// the pre-decoded interpreter (bpf/predecode.cpp) in both its run() and
// run_batch() forms, and the compiler re-invoked on the parser
// round-trip of the same expression.  They are supposed to be
// extensionally equal; this module
// generates structured frames (plain/VLAN/QinQ Ethernet, IPv4 with
// options and fragments, TCP/UDP, IPv6, truncated captures, garbage)
// and filter expressions over the full parser grammar, and checks every
// (filter, frame) pair for agreement:
//
//   evaluate(expr)  ==  run(compile(expr))  ==  run(compile(reparse(
//       to_string(expr))))  ==  re-run after disasm + re-verify
//
// A separate generator emits random *valid* programs and asserts that
// verify() acceptance implies run() never throws, and a text mutator
// feeds the parser malformed inputs asserting ParseError is the only
// escape.  Everything derives from one seed, so a diverging pair
// replays bit-for-bit.  run_difftest_soak() sweeps consecutive seeds —
// the regression gate CI runs.
//
// Tier 2 (run_engine_crosscheck) replays one generated traffic set
// through the pcap_compat facade on all five engines (PF_RING, DNA,
// NETMAP, PSIOE, WireCAP) and asserts the delivered match sets are
// identical to each other and to the eval oracle, with zero drops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bpf/ast.hpp"
#include "bpf/insn.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace wirecap::testing {

/// One generated capture: `bytes` is the captured prefix (caplen) of a
/// frame that was `wire_len` bytes on the wire.
struct GeneratedFrame {
  std::vector<std::byte> bytes;
  std::uint32_t wire_len = 0;
  std::string description;
};

/// Seeded structured frame generator.  Emits the traffic mix the BPF
/// grammar can discriminate: IPv4 (TCP/UDP/ICMP) plain and behind one
/// or two 802.1Q tags, IP options, fragments, IPv6, undersized garbage,
/// and truncated captures (caplen < wire_len).
class FrameGenerator {
 public:
  explicit FrameGenerator(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] GeneratedFrame next();

 private:
  Xoshiro256 rng_;
};

/// Seeded filter-expression generator over the full parser grammar.
/// Draws addresses/ports/VIDs from the same pools as FrameGenerator so
/// generated pairs actually exercise both match outcomes.
class FilterGenerator {
 public:
  explicit FilterGenerator(std::uint64_t seed) : rng_(seed) {}

  /// A random expression AST (never null).
  [[nodiscard]] bpf::ExprPtr next_expr();
  /// Renders next_expr() through bpf::to_string.
  [[nodiscard]] std::string next();

 private:
  [[nodiscard]] bpf::ExprPtr gen(unsigned depth);
  [[nodiscard]] bpf::ExprPtr gen_primitive();

  Xoshiro256 rng_;
};

/// A random program that verify() accepts *by construction*: jumps stay
/// forward and in range, memory slots stay below kMemSlots, the program
/// ends in RET.  Used to assert acceptance implies run() cannot throw.
[[nodiscard]] bpf::Program generate_valid_program(Xoshiro256& rng);

/// One disagreement between implementations on one (filter, frame)
/// pair, or a structural failure (round-trip, recompile) of a filter.
struct Divergence {
  std::string kind;  // "eval_vm", "reparse", "recompile", "rerun", ...
  std::string filter;
  std::string frame;
  std::string detail;
};

struct DifftestConfig {
  std::uint64_t seed = 1;
  /// Filters generated per run.
  std::uint32_t filters = 32;
  /// Frames generated per run (each filter is checked against all).
  std::uint32_t frames = 96;
  /// Random valid programs executed against random frames.
  std::uint32_t programs = 64;
  /// Mutated filter texts fed to the parser (ParseError-only contract).
  std::uint32_t mutations = 128;
  /// Divergence counters are published under difftest.* when set.
  telemetry::Telemetry* telemetry = nullptr;
};

struct DifftestResult {
  std::uint64_t seed = 0;
  std::uint64_t filters = 0;
  std::uint64_t frames = 0;
  std::uint64_t pairs = 0;
  std::uint64_t program_runs = 0;
  /// Mutated texts the parser rejected with ParseError (the rest
  /// parsed; both outcomes honor the contract).
  std::uint64_t parse_rejects = 0;
  /// Filters rejected by the documented jump-offset-overflow limit.
  std::uint64_t compile_rejects = 0;
  std::vector<Divergence> divergences;
  [[nodiscard]] bool clean() const { return divergences.empty(); }
};

/// One seeded differential run over generated filters × frames, plus
/// the valid-program and parser-mutation sweeps.
[[nodiscard]] DifftestResult run_difftest(const DifftestConfig& config);

struct DifftestSoakResult {
  std::uint32_t seeds_run = 0;
  std::uint32_t seeds_clean = 0;
  std::uint64_t total_pairs = 0;
  std::uint64_t total_program_runs = 0;
  std::uint64_t total_divergences = 0;
  /// "seed N [kind] filter '...' frame '...': detail" per divergence.
  std::vector<std::string> failures;
  [[nodiscard]] bool clean() const { return total_divergences == 0; }
  /// Multi-line divergence report (the CI artifact on failure).
  [[nodiscard]] std::string report() const;
};

/// Runs run_difftest over `count` consecutive seeds starting at
/// `first_seed`, with `base` supplying everything but the seed.
[[nodiscard]] DifftestSoakResult run_difftest_soak(std::uint64_t first_seed,
                                                   std::uint32_t count,
                                                   DifftestConfig base = {});

struct EngineCrosscheckConfig {
  std::uint64_t seed = 1;
  /// Frames injected per engine (identical traffic for all five).
  std::uint32_t frames = 160;
  /// Filter expression; empty generates one from the seed.
  std::string filter;
  telemetry::Telemetry* telemetry = nullptr;
};

struct EngineCrosscheckResult {
  struct PerEngine {
    std::string name;
    std::uint64_t matched = 0;
    std::uint64_t recv = 0;
    std::uint64_t drop = 0;
    std::uint64_t ifdrop = 0;
  };
  std::string filter;
  std::uint64_t oracle_matched = 0;
  std::vector<PerEngine> engines;
  std::vector<std::string> problems;
  [[nodiscard]] bool clean() const { return problems.empty(); }
};

/// Tier 2: replays one generated traffic set through pcap_compat on all
/// five engines and cross-checks the match sets against the eval
/// oracle (computed on the delivered snap-length bytes).
[[nodiscard]] EngineCrosscheckResult run_engine_crosscheck(
    const EngineCrosscheckConfig& config);

struct BatchEquivalenceConfig {
  std::uint64_t seed = 1;
  /// Frames injected per engine instance (identical traffic for the
  /// per-packet and the batched instance of every engine).
  std::uint32_t frames = 160;
  /// Filter expression; empty generates one from the seed.
  std::string filter;
  /// Upper bound on views per try_next_batch pull.
  std::uint32_t max_batch = 64;
  /// Seeded adversities on the batched reader: the per-pull limit
  /// varies randomly in [1, max_batch] and completed batches are held
  /// back and released LIFO (exercising deferred and out-of-order
  /// recycling under deref_n / the PF_RING read-ahead window).
  bool adversarial = false;
};

struct BatchEquivalenceResult {
  struct PerEngine {
    std::string name;
    std::uint64_t packets = 0;   // delivered on each path
    std::uint64_t batches = 0;   // try_next_batch pulls that returned >0
    std::uint64_t matched = 0;   // filter matches (identical both paths)
  };
  std::string filter;
  std::uint64_t oracle_matched = 0;
  std::vector<PerEngine> engines;
  std::vector<std::string> problems;
  [[nodiscard]] bool clean() const { return problems.empty(); }
};

/// Tier 2b: for each of the five engines, replays one generated traffic
/// set through two identical fabrics — one drained packet-at-a-time
/// (try_next / done, filter via Predecoded::run) and one drained in
/// batches (try_next_batch / done_batch, filter via run_batch) — and
/// asserts the two paths produce byte-identical (seq, bytes, wire_len)
/// streams and identical match sets, both equal to the eval oracle.
[[nodiscard]] BatchEquivalenceResult run_batch_equivalence(
    const BatchEquivalenceConfig& config);

struct BatchEquivalenceSoakResult {
  std::uint32_t seeds_run = 0;
  std::uint32_t seeds_clean = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t total_problems = 0;
  /// "seed N: <problem>" per divergence.
  std::vector<std::string> failures;
  [[nodiscard]] bool clean() const { return total_problems == 0; }
};

/// Runs run_batch_equivalence over `count` consecutive seeds starting
/// at `first_seed`, with `base` supplying everything but the seed.
[[nodiscard]] BatchEquivalenceSoakResult run_batch_equivalence_soak(
    std::uint64_t first_seed, std::uint32_t count,
    BatchEquivalenceConfig base = {});

}  // namespace wirecap::testing
