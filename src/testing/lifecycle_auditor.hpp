// The chunk lifecycle auditor: a PoolObserver that shadows the
// free → attached → captured → free state machine of every ring buffer
// pool it watches and fails fast on violations.
//
// The production data path carries chunk *metadata* across many hands —
// driver segments, the engine's capture/recycle work-queue pair,
// `pending`, buddy capture queues, the outstanding map, application
// threads, TX completions — and a bug anywhere shows up far from its
// cause (a leak looks like pool exhaustion; a double recycle looks like
// a corrupted free list).  The auditor closes that distance: it keeps
// an independent copy of every chunk's state, checks each transition
// the pool commits against the legal edges, and cross-checks the
// engine-wide conservation law
//
//   free + attached + captured == R
//   captured == (capture queues ∪ pending ∪ recycle queue ∪ outstanding)
//
// at event boundaries.  It reports through the telemetry registry and
// tracer and is driven over many seeds by the fault harness (faults.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "driver/chunk_pool.hpp"
#include "engines/tenant.hpp"
#include "telemetry/telemetry.hpp"

namespace wirecap::core {
class WirecapEngine;
}

namespace wirecap::testing {

struct AuditorConfig {
  /// Throw std::logic_error at the violating call site (fail fast).
  /// The soak harness turns this off to collect every violation of a
  /// seed before reporting.
  bool throw_on_violation = true;
  /// Violation messages kept verbatim (the count is always exact).
  std::size_t max_recorded_violations = 64;
};

struct AuditorStats {
  std::uint64_t transitions = 0;
  std::uint64_t attaches = 0;
  std::uint64_t captures = 0;
  std::uint64_t rescues = 0;
  std::uint64_t recycles = 0;
  std::uint64_t releases = 0;
  std::uint64_t recycle_rejects = 0;
  /// Fan-out share grants / releases observed (pipeline FanOut).
  std::uint64_t share_grants = 0;
  std::uint64_t share_releases = 0;
  std::uint64_t conservation_checks = 0;
  /// Per-tenant census agreements audited (multi-tenant harnesses).
  std::uint64_t tenant_checks = 0;
  std::uint64_t violations = 0;
};

class ChunkLifecycleAuditor final : public driver::PoolObserver {
 public:
  explicit ChunkLifecycleAuditor(AuditorConfig config = {});

  // --- PoolObserver ---
  void on_transition(const driver::RingBufferPool& pool,
                     std::uint32_t chunk_id, driver::ChunkState from,
                     driver::ChunkState to, const char* cause) override;
  void on_recycle_reject(const driver::RingBufferPool& pool,
                         const driver::ChunkMeta& meta,
                         StatusCode code) override;
  void on_shares(const driver::RingBufferPool& pool, std::uint32_t chunk_id,
                 std::int64_t delta, std::uint32_t now) override;

  // --- audits (call at event boundaries, i.e. between scheduler events) ---

  /// Per-pool invariants: the shadow agrees with the pool's actual
  /// states chunk by chunk (a disagreement means a transition bypassed
  /// the observer seam) and the state populations sum to R.
  void check_pool(const driver::RingBufferPool& pool);

  /// The engine-wide conservation law for an *open* ring: every chunk
  /// the pool counts as captured is found in exactly one engine-side
  /// location.  A shortfall is a leak; an excess is double tracking.
  void check_conservation(const core::WirecapEngine& engine,
                          std::uint32_t ring);

  /// The per-tenant extension of the conservation law: the tenant's
  /// quota account, the sum of its queues' charge counters, the sum of
  /// its pools' captured populations and the engine-side census must
  /// all agree — a stalled tenant can only be debited for chunks that
  /// really sit in its own pools, never a neighbour's.  Only meaningful
  /// while every member queue is open (close() strands are settled by
  /// the close()-time credit).
  void check_tenant_conservation(const core::WirecapEngine& engine,
                                 engines::TenantId tenant);

  // --- results ---
  [[nodiscard]] const AuditorStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violation_log_;
  }
  [[nodiscard]] bool clean() const { return stats_.violations == 0; }

  /// Registers the auditor's counters under `<prefix>.auditor.*` and
  /// keeps the tracer (+ virtual-time clock) for per-violation instant
  /// events.
  void bind_telemetry(telemetry::Telemetry& telemetry,
                      const std::string& prefix,
                      std::function<Nanos()> clock = nullptr);

 private:
  struct Shadow {
    std::vector<driver::ChunkState> states;
    /// Shadowed fan-out share counts (lazily sized on first grant);
    /// nonzero shares are only legal on captured chunks, and every
    /// recycle must happen at zero.
    std::vector<std::uint32_t> shares;
  };

  Shadow& shadow_for(const driver::RingBufferPool& pool,
                     driver::ChunkState seen_now, std::uint32_t chunk_id,
                     bool* first_sight);
  void violation(const driver::RingBufferPool& pool, std::uint32_t chunk_id,
                 const std::string& message);
  void tenant_violation(engines::TenantId tenant, const std::string& message);

  AuditorConfig config_;
  AuditorStats stats_;
  /// Keyed by RingBufferPool::uid(): reopen cycles build fresh pools at
  /// possibly-recycled addresses, and stale shadow state must never
  /// bleed into a new pool's audit.
  std::unordered_map<std::uint64_t, Shadow> shadows_;
  std::vector<std::string> violation_log_;
  telemetry::EventTracer* tracer_ = nullptr;
  std::function<Nanos()> clock_;
};

}  // namespace wirecap::testing
