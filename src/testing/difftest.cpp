#include "testing/difftest.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>
#include <stdexcept>

#include "bpf/codegen.hpp"
#include "bpf/disasm.hpp"
#include "bpf/eval.hpp"
#include "bpf/parser.hpp"
#include "bpf/predecode.hpp"
#include "bpf/vm.hpp"
#include "engines/factory.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "nic/device.hpp"
#include "pcapcompat/pcap_compat.hpp"
#include "sim/bus.hpp"
#include "sim/core.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::testing {

namespace {

// Shared value pools: the frame generator draws addresses/ports/VIDs
// from the same small sets the filter generator does, so generated
// (filter, frame) pairs land on both sides of every predicate instead
// of being almost-always-false.
constexpr std::uint32_t kAddrPool[] = {
    0x83E10204,  // 131.225.2.4 (the paper's border subnet)
    0x83E10263,  // 131.225.2.99
    0x83E10901,  // 131.225.9.1
    0x0A000001,  // 10.0.0.1
    0x0A000102,  // 10.0.1.2
    0xC0A80001,  // 192.168.0.1
};
constexpr std::uint16_t kPortPool[] = {22, 53, 80, 123, 443, 5001, 8080};
constexpr std::uint16_t kVidPool[] = {1, 7, 42, 100, 4095};

constexpr std::uint32_t kAcceptLen = 65535;

[[nodiscard]] std::uint32_t pick_addr(Xoshiro256& rng) {
  if (rng.next_bool(0.8)) {
    return kAddrPool[rng.next_below(std::size(kAddrPool))];
  }
  return static_cast<std::uint32_t>(rng.next());
}

[[nodiscard]] std::uint16_t pick_port(Xoshiro256& rng) {
  if (rng.next_bool(0.8)) {
    return kPortPool[rng.next_below(std::size(kPortPool))];
  }
  return static_cast<std::uint16_t>(rng.next_below(65536));
}

[[nodiscard]] std::uint16_t pick_vid(Xoshiro256& rng) {
  if (rng.next_bool(0.8)) {
    return kVidPool[rng.next_below(std::size(kVidPool))];
  }
  return static_cast<std::uint16_t>(rng.next_below(4096));
}

[[nodiscard]] net::IpProto pick_proto(Xoshiro256& rng) {
  switch (rng.next_below(5)) {
    case 0: return net::IpProto::kIcmp;
    case 1:
    case 2: return net::IpProto::kTcp;
    default: return net::IpProto::kUdp;
  }
}

[[nodiscard]] std::span<const std::byte> as_span(
    const std::vector<std::byte>& bytes) {
  return {bytes.data(), bytes.size()};
}

}  // namespace

GeneratedFrame FrameGenerator::next() {
  GeneratedFrame out;
  const auto kind = rng_.next_below(12);

  if (kind == 0) {
    // Unstructured garbage, from the empty frame up.
    const std::size_t len = rng_.next_below(81);
    out.bytes.resize(len);
    for (auto& b : out.bytes) {
      b = static_cast<std::byte>(rng_.next() & 0xFF);
    }
    out.wire_len = static_cast<std::uint32_t>(
        len + (rng_.next_bool(0.5) ? rng_.next_below(64) : 0));
    std::ostringstream desc;
    desc << "garbage cap=" << len << " wire=" << out.wire_len;
    out.description = desc.str();
    return out;
  }

  std::array<std::byte, 512> buf{};
  std::size_t wire = 0;
  std::ostringstream desc;

  if (kind == 1) {
    // IPv6.
    net::Ipv6Addr src{}, dst{};
    for (auto& o : src.octets) o = static_cast<std::uint8_t>(rng_.next());
    for (auto& o : dst.octets) o = static_cast<std::uint8_t>(rng_.next());
    const auto proto =
        rng_.next_bool(0.5) ? net::IpProto::kUdp : net::IpProto::kTcp;
    wire = net::kEthernetHeaderLen + net::kIpv6HeaderLen +
           net::kTcpMinHeaderLen + rng_.next_below(80);
    net::build_ipv6_frame(buf, src, dst, proto, pick_port(rng_),
                          pick_port(rng_), wire);
    desc << "ipv6/" << (proto == net::IpProto::kUdp ? "udp" : "tcp");
  } else {
    net::Ipv4FrameSpec spec;
    spec.flow.src_ip = net::Ipv4Addr{pick_addr(rng_)};
    spec.flow.dst_ip = net::Ipv4Addr{pick_addr(rng_)};
    spec.flow.proto = pick_proto(rng_);
    spec.flow.src_port = pick_port(rng_);
    spec.flow.dst_port = pick_port(rng_);
    spec.ip_id = static_cast<std::uint16_t>(rng_.next());
    desc << "ipv4/"
         << (spec.flow.proto == net::IpProto::kUdp   ? "udp"
             : spec.flow.proto == net::IpProto::kTcp ? "tcp"
                                                     : "icmp");

    // 802.1Q stack: none (kind 2..5), one tag (6..8), two tags (9).
    if (kind >= 6 && kind <= 8) {
      spec.vlan_vids = {pick_vid(rng_)};
      desc << " vlan=" << spec.vlan_vids[0];
    } else if (kind == 9) {
      spec.vlan_vids = {pick_vid(rng_), pick_vid(rng_)};
      desc << " qinq=" << spec.vlan_vids[0] << "/" << spec.vlan_vids[1];
    }
    // IP options (kind 10) and fragments (kind 11) also mix with the
    // plain shapes at low probability so they occur behind VLAN too.
    if (kind == 10 || rng_.next_bool(0.1)) {
      spec.ihl = static_cast<std::uint8_t>(rng_.next_in(6, 15));
      desc << " ihl=" << static_cast<unsigned>(spec.ihl);
    }
    if (kind == 11 || rng_.next_bool(0.1)) {
      spec.flags_fragment =
          static_cast<std::uint16_t>(rng_.next_in(1, 0x1FFF) |
                                     (rng_.next_bool(0.5) ? 0x2000 : 0));
      desc << " frag";
    }

    const std::size_t minimum =
        net::kEthernetHeaderLen + net::kVlanTagLen * spec.vlan_vids.size() +
        static_cast<std::size_t>(spec.ihl) * 4 +
        ((spec.flags_fragment & 0x1FFF) != 0 ? 8 : net::kTcpMinHeaderLen);
    spec.wire_len = minimum + rng_.next_below(120);
    wire = net::build_ipv4_frame(buf, spec);
  }

  // Truncated capture: caplen < wire_len, cutting anywhere including
  // mid-header (the difftest's whole point).
  std::size_t caplen = wire;
  if (rng_.next_bool(0.35)) {
    caplen = rng_.next_below(wire + 1);
  } else if (rng_.next_bool(0.3)) {
    caplen = std::min<std::size_t>(wire, net::WirePacket::kSnapBytes);
  }
  out.bytes.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(caplen));
  out.wire_len = static_cast<std::uint32_t>(wire);
  desc << " wire=" << wire << " cap=" << caplen;
  out.description = desc.str();
  return out;
}

bpf::ExprPtr FilterGenerator::gen_primitive() {
  using bpf::Direction;
  using bpf::PrimitiveKind;
  bpf::Primitive p;
  const auto dir = [&] {
    switch (rng_.next_below(3)) {
      case 0: return Direction::kSrc;
      case 1: return Direction::kDst;
      default: return Direction::kEither;
    }
  };
  switch (rng_.next_below(12)) {
    case 0: p.kind = PrimitiveKind::kProtoIp; break;
    case 1: p.kind = PrimitiveKind::kProtoIp6; break;
    case 2: p.kind = PrimitiveKind::kProtoTcp; break;
    case 3: p.kind = PrimitiveKind::kProtoUdp; break;
    case 4: p.kind = PrimitiveKind::kProtoIcmp; break;
    case 5:
      p.kind = PrimitiveKind::kVlan;
      if (rng_.next_bool(0.6)) {
        p.vlan_id = pick_vid(rng_);
        p.has_vlan_id = true;
      }
      break;
    case 6:
      p.kind = PrimitiveKind::kHost;
      p.dir = dir();
      p.addr = net::Ipv4Addr{pick_addr(rng_)};
      break;
    case 7: {
      p.kind = PrimitiveKind::kNet;
      p.dir = dir();
      p.addr = net::Ipv4Addr{pick_addr(rng_)};
      constexpr unsigned kPrefixes[] = {8, 16, 24, 28, 32};
      p.prefix_len = kPrefixes[rng_.next_below(std::size(kPrefixes))];
      break;
    }
    case 8:
      p.kind = PrimitiveKind::kPort;
      p.dir = dir();
      p.port = pick_port(rng_);
      break;
    case 9: {
      p.kind = PrimitiveKind::kPortRange;
      p.dir = dir();
      const auto a = pick_port(rng_);
      const auto b = pick_port(rng_);
      p.port = std::min(a, b);
      p.port_hi = std::max(a, b);
      break;
    }
    case 10:
      p.kind = PrimitiveKind::kLenLe;
      p.length = static_cast<std::uint32_t>(rng_.next_in(40, 220));
      break;
    default:
      p.kind = PrimitiveKind::kLenGe;
      p.length = static_cast<std::uint32_t>(rng_.next_in(40, 220));
      break;
  }
  return bpf::Expr::make_primitive(p);
}

bpf::ExprPtr FilterGenerator::gen(unsigned depth) {
  const auto r = rng_.next_below(100);
  if (depth >= 4 || r < 50) return gen_primitive();
  if (r < 72) return bpf::Expr::make_and(gen(depth + 1), gen(depth + 1));
  if (r < 94) return bpf::Expr::make_or(gen(depth + 1), gen(depth + 1));
  return bpf::Expr::make_not(gen(depth + 1));
}

bpf::ExprPtr FilterGenerator::next_expr() { return gen(0); }

std::string FilterGenerator::next() { return bpf::to_string(*next_expr()); }

bpf::Program generate_valid_program(Xoshiro256& rng) {
  using namespace bpf;
  const std::size_t n = 2 + rng.next_below(31);
  Program prog;
  const auto pick_size = [&]() -> std::uint16_t {
    switch (rng.next_below(3)) {
      case 0: return kSizeW;
      case 1: return kSizeH;
      default: return kSizeB;
    }
  };
  for (std::size_t pc = 0; pc + 1 < n; ++pc) {
    // Conditional-jump offsets must stay inside the program; the last
    // instruction is always the closing RET appended below.
    const auto max_off =
        static_cast<std::uint32_t>(std::min<std::size_t>(n - 2 - pc, 255));
    switch (rng.next_below(9)) {
      case 0:  // packet load
        prog.push_back(stmt(
            kClassLd | pick_size() | (rng.next_bool(0.5) ? kModeAbs : kModeInd),
            static_cast<std::uint32_t>(rng.next_below(96))));
        break;
      case 1:  // register load (W only)
        switch (rng.next_below(3)) {
          case 0:
            prog.push_back(stmt(kClassLd | kSizeW | kModeImm,
                                static_cast<std::uint32_t>(rng.next())));
            break;
          case 1:
            prog.push_back(stmt(kClassLd | kSizeW | kModeLen, 0));
            break;
          default:
            prog.push_back(
                stmt(kClassLd | kSizeW | kModeMem,
                     static_cast<std::uint32_t>(rng.next_below(kMemSlots))));
            break;
        }
        break;
      case 2:  // LDX
        switch (rng.next_below(4)) {
          case 0:
            prog.push_back(stmt(kClassLdx | kSizeW | kModeImm,
                                static_cast<std::uint32_t>(rng.next_below(256))));
            break;
          case 1:
            prog.push_back(stmt(kClassLdx | kSizeW | kModeLen, 0));
            break;
          case 2:
            prog.push_back(
                stmt(kClassLdx | kSizeW | kModeMem,
                     static_cast<std::uint32_t>(rng.next_below(kMemSlots))));
            break;
          default:  // MSH
            prog.push_back(stmt(kClassLdx | kSizeB | kModeMsh,
                                static_cast<std::uint32_t>(rng.next_below(96))));
            break;
        }
        break;
      case 3:  // scratch store
        prog.push_back(
            stmt(rng.next_bool(0.5) ? kClassSt : kClassStx,
                 static_cast<std::uint32_t>(rng.next_below(kMemSlots))));
        break;
      case 4: {  // ALU
        constexpr std::uint16_t kOps[] = {kAluAdd, kAluSub, kAluMul, kAluDiv,
                                          kAluMod, kAluAnd, kAluOr,  kAluXor,
                                          kAluLsh, kAluRsh, kAluNeg};
        const auto op = kOps[rng.next_below(std::size(kOps))];
        const std::uint16_t src = rng.next_bool(0.5) ? kSrcX : kSrcK;
        std::uint32_t k = static_cast<std::uint32_t>(rng.next_below(64));
        if ((op == kAluDiv || op == kAluMod) && src == kSrcK) {
          k = 1 + static_cast<std::uint32_t>(rng.next_below(1000));
        }
        prog.push_back(stmt(kClassAlu | op | src, k));
        break;
      }
      case 5:  // JA
        prog.push_back(stmt(kClassJmp | kJmpJa,
                            static_cast<std::uint32_t>(
                                rng.next_below(n - 1 - pc))));
        break;
      case 6: {  // conditional jump
        constexpr std::uint16_t kOps[] = {kJmpJeq, kJmpJgt, kJmpJge, kJmpJset};
        const auto op = kOps[rng.next_below(std::size(kOps))];
        const std::uint16_t src = rng.next_bool(0.5) ? kSrcX : kSrcK;
        prog.push_back(jump(
            kClassJmp | op | src, static_cast<std::uint32_t>(rng.next_below(512)),
            static_cast<std::uint8_t>(rng.next_below(max_off + 1)),
            static_cast<std::uint8_t>(rng.next_below(max_off + 1))));
        break;
      }
      case 7:  // early return
        if (rng.next_bool(0.5)) {
          prog.push_back(stmt(kClassRet | kRetK,
                              static_cast<std::uint32_t>(rng.next_below(2) *
                                                         kAcceptLen)));
        } else {
          prog.push_back(stmt(kClassRet | kRetA, 0));
        }
        break;
      default:  // MISC
        prog.push_back(
            stmt(kClassMisc | (rng.next_bool(0.5) ? kMiscTax : kMiscTxa), 0));
        break;
    }
  }
  prog.push_back(stmt(kClassRet | kRetK,
                      static_cast<std::uint32_t>(rng.next_below(2) * kAcceptLen)));
  return prog;
}

namespace {

/// Random single-character edits turning well-formed filter text into
/// near-miss garbage for the parser's ParseError-only contract.
[[nodiscard]] std::string mutate_text(std::string text, Xoshiro256& rng) {
  constexpr char kCharset[] = "()<>=-/.0123456789abcdefghijklmnopqrstuvwxyz &|!";
  const auto edits = 1 + rng.next_below(4);
  for (std::uint64_t i = 0; i < edits; ++i) {
    const auto c = kCharset[rng.next_below(sizeof(kCharset) - 1)];
    switch (text.empty() ? 0 : rng.next_below(3)) {
      case 0:  // insert
        text.insert(text.begin() +
                        static_cast<std::ptrdiff_t>(rng.next_below(text.size() + 1)),
                    c);
        break;
      case 1:  // delete
        text.erase(text.begin() +
                   static_cast<std::ptrdiff_t>(rng.next_below(text.size())));
        break;
      default:  // replace
        text[rng.next_below(text.size())] = c;
        break;
    }
  }
  return text;
}

}  // namespace

DifftestResult run_difftest(const DifftestConfig& config) {
  DifftestResult result;
  result.seed = config.seed;

  Xoshiro256 root{config.seed};
  FrameGenerator frame_gen{root.next()};
  FilterGenerator filter_gen{root.next()};
  Xoshiro256 prog_rng{root.next()};
  Xoshiro256 mut_rng{root.next()};

  const auto diverge = [&](std::string kind, std::string filter,
                           std::string frame, std::string detail) {
    result.divergences.push_back(Divergence{std::move(kind), std::move(filter),
                                            std::move(frame),
                                            std::move(detail)});
  };

  std::vector<GeneratedFrame> corpus;
  corpus.reserve(config.frames);
  for (std::uint32_t i = 0; i < config.frames; ++i) {
    corpus.push_back(frame_gen.next());
  }
  result.frames = corpus.size();

  // --- tier 1a: eval vs compiled vs round-tripped-recompiled ---
  for (std::uint32_t f = 0; f < config.filters; ++f) {
    const bpf::ExprPtr expr = filter_gen.next_expr();
    const std::string text = bpf::to_string(*expr);
    ++result.filters;

    bpf::ExprPtr reparsed;
    try {
      reparsed = bpf::parse_filter(text);
    } catch (const std::exception& e) {
      diverge("reparse", text, "", e.what());
      continue;
    }

    bpf::Program prog, prog_rt;
    try {
      prog = bpf::compile(expr.get(), kAcceptLen);
      prog_rt = bpf::compile(reparsed.get(), kAcceptLen);
    } catch (const std::invalid_argument&) {
      // The documented jump-offset-overflow rejection; deterministic,
      // so both compiles reject or neither does.
      ++result.compile_rejects;
      continue;
    } catch (const std::exception& e) {
      diverge("compile", text, "", e.what());
      continue;
    }

    if (prog != prog_rt) {
      diverge("recompile", text, "",
              "round-tripped expression compiled to a different program");
    }
    // Disassemble, then re-verify and re-run the same object: disasm
    // must not disturb or crash on anything codegen emits.
    const std::string listing = bpf::disassemble(prog);
    if (listing.empty() || listing.find('?') != std::string::npos) {
      diverge("disasm", text, "", "unknown opcode in listing:\n" + listing);
    }
    if (const auto v = bpf::verify(prog); !v.ok) {
      diverge("reverify", text, "", v.error);
      continue;
    }
    const bpf::Predecoded pre{prog};

    // Batch the whole corpus behind one run_batch() call: its accept
    // vector must agree per-frame with the scalar interpreters.
    engines::PacketBatch batch;
    std::vector<std::uint8_t> accepts;
    for (auto& g : corpus) {
      engines::CaptureView view;
      view.bytes = std::span<std::byte>(g.bytes);
      view.wire_len = g.wire_len;
      view.seq = batch.views.size();
      batch.views.push_back(view);
    }
    const std::size_t batch_matches = pre.run_batch(batch, accepts);

    std::size_t scalar_matches = 0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const GeneratedFrame& g = corpus[i];
      ++result.pairs;
      const bool eval_m = bpf::evaluate(expr.get(), as_span(g.bytes), g.wire_len);
      const bool vm_m = bpf::run(prog, as_span(g.bytes), g.wire_len) != 0;
      const bool rt_m = bpf::run(prog_rt, as_span(g.bytes), g.wire_len) != 0;
      const bool rerun_m = bpf::run(prog, as_span(g.bytes), g.wire_len) != 0;
      const bool pre_m = pre.run(as_span(g.bytes), g.wire_len) != 0;
      const bool batch_m = accepts[i] != 0;
      scalar_matches += vm_m;
      if (eval_m != vm_m) {
        std::ostringstream detail;
        detail << "eval=" << eval_m << " vm=" << vm_m;
        diverge("eval_vm", text, g.description, detail.str());
      }
      if (vm_m != rt_m) {
        diverge("roundtrip_run", text, g.description,
                "round-tripped program disagrees");
      }
      if (vm_m != rerun_m) {
        diverge("rerun", text, g.description, "re-run disagrees (state leak)");
      }
      if (vm_m != pre_m) {
        std::ostringstream detail;
        detail << "vm=" << vm_m << " predecoded=" << pre_m;
        diverge("predecode", text, g.description, detail.str());
      }
      if (vm_m != batch_m) {
        std::ostringstream detail;
        detail << "vm=" << vm_m << " run_batch=" << batch_m;
        diverge("run_batch", text, g.description, detail.str());
      }
    }
    if (batch_matches != scalar_matches) {
      std::ostringstream detail;
      detail << "run_batch counted " << batch_matches << " matches, scalar "
             << scalar_matches;
      diverge("run_batch_count", text, "", detail.str());
    }
  }

  // --- tier 1b: verify() acceptance implies run() never throws ---
  for (std::uint32_t i = 0; i < config.programs; ++i) {
    const bpf::Program prog = generate_valid_program(prog_rng);
    if (const auto v = bpf::verify(prog); !v.ok) {
      diverge("generator", "", "", "valid-program generator rejected: " + v.error);
      continue;
    }
    const auto& g = corpus[prog_rng.next_below(corpus.size())];
    try {
      const std::uint32_t vm_result = bpf::run(prog, as_span(g.bytes),
                                               g.wire_len);
      // A verified program must also predecode, and the pre-decoded
      // interpreter must return the identical accept value.
      const bpf::Predecoded pre{prog};
      const std::uint32_t pre_result = pre.run(as_span(g.bytes), g.wire_len);
      if (pre_result != vm_result) {
        std::ostringstream detail;
        detail << "vm=" << vm_result << " predecoded=" << pre_result;
        diverge("predecode_valid", bpf::disassemble(prog), g.description,
                detail.str());
      }
      ++result.program_runs;
    } catch (const std::exception& e) {
      diverge("vm_throw", bpf::disassemble(prog), g.description, e.what());
    }
  }

  // --- tier 1c: the parser's ParseError-only contract under mutation ---
  for (std::uint32_t i = 0; i < config.mutations; ++i) {
    const std::string text = mutate_text(filter_gen.next(), mut_rng);
    try {
      const bpf::ExprPtr expr = bpf::parse_filter(text);
      // Whatever parses must also compile (or hit the documented
      // complexity rejection) — never std::logic_error from codegen.
      if (expr != nullptr) {
        try {
          (void)bpf::compile(expr.get(), kAcceptLen);
        } catch (const std::invalid_argument&) {
          ++result.compile_rejects;
        }
      }
    } catch (const bpf::ParseError&) {
      ++result.parse_rejects;
    } catch (const std::exception& e) {
      diverge("parser_contract", text, "",
              std::string("non-ParseError escaped: ") + e.what());
    }
  }

  if (config.telemetry != nullptr) {
    auto& reg = config.telemetry->registry;
    reg.counter("difftest.filters").add(result.filters);
    reg.counter("difftest.frames").add(result.frames);
    reg.counter("difftest.pairs").add(result.pairs);
    reg.counter("difftest.program_runs").add(result.program_runs);
    reg.counter("difftest.parse_rejects").add(result.parse_rejects);
    reg.counter("difftest.compile_rejects").add(result.compile_rejects);
    reg.counter("difftest.divergences").add(result.divergences.size());
    for (const auto& d : result.divergences) {
      reg.counter("difftest.diverge." + d.kind).add(1);
    }
  }
  return result;
}

std::string DifftestSoakResult::report() const {
  std::ostringstream out;
  out << "difftest soak: " << seeds_clean << "/" << seeds_run
      << " seeds clean, " << total_pairs << " pairs, " << total_program_runs
      << " program runs, " << total_divergences << " divergences\n";
  for (const auto& f : failures) out << "  " << f << "\n";
  return out.str();
}

DifftestSoakResult run_difftest_soak(std::uint64_t first_seed,
                                     std::uint32_t count,
                                     DifftestConfig base) {
  DifftestSoakResult soak;
  for (std::uint32_t i = 0; i < count; ++i) {
    DifftestConfig config = base;
    config.seed = first_seed + i;
    const DifftestResult result = run_difftest(config);
    ++soak.seeds_run;
    soak.total_pairs += result.pairs;
    soak.total_program_runs += result.program_runs;
    soak.total_divergences += result.divergences.size();
    if (result.clean()) {
      ++soak.seeds_clean;
    } else {
      for (const auto& d : result.divergences) {
        std::ostringstream line;
        line << "seed " << config.seed << " [" << d.kind << "] filter '"
             << d.filter << "' frame '" << d.frame << "': " << d.detail;
        soak.failures.push_back(line.str());
      }
    }
  }
  return soak;
}

namespace {

/// One traffic set replayed identically through several engine
/// fabrics.  Each frame carries its index in the src-MAC bytes [6..10)
/// so handlers can identify deliveries; `oracle` is eval on the
/// delivered view (snap-length capture).  Shared plumbing of the
/// engine crosscheck and the batch-equivalence suite.
struct LabeledTraffic {
  std::string filter_text;
  bpf::Program prog;
  std::vector<GeneratedFrame> frames;
  std::set<std::uint32_t> oracle;
  std::string error;  // non-empty: the filter failed to parse/compile
};

LabeledTraffic generate_labeled_traffic(std::uint64_t seed,
                                        std::uint32_t count,
                                        std::string filter) {
  LabeledTraffic out;
  Xoshiro256 root{seed};
  const std::uint64_t filter_seed = root.next();
  const std::uint64_t frame_seed = root.next();

  if (filter.empty()) {
    FilterGenerator fg{filter_seed};
    filter = fg.next();
  }
  out.filter_text = std::move(filter);

  bpf::ExprPtr expr;
  try {
    expr = bpf::parse_filter(out.filter_text);
    out.prog = bpf::compile(expr.get(), kAcceptLen);
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }

  FrameGenerator fg{frame_seed};
  while (out.frames.size() < count) {
    GeneratedFrame g = fg.next();
    if (g.bytes.size() < net::kEthernetHeaderLen) continue;
    const auto idx = static_cast<std::uint32_t>(out.frames.size());
    g.bytes[6] = static_cast<std::byte>(idx >> 24);
    g.bytes[7] = static_cast<std::byte>(idx >> 16);
    g.bytes[8] = static_cast<std::byte>(idx >> 8);
    g.bytes[9] = static_cast<std::byte>(idx);
    const std::size_t caplen =
        std::min<std::size_t>(g.bytes.size(), net::WirePacket::kSnapBytes);
    if (bpf::evaluate(expr.get(), as_span(g.bytes).first(caplen),
                      g.wire_len)) {
      out.oracle.insert(idx);
    }
    out.frames.push_back(std::move(g));
  }
  return out;
}

}  // namespace

EngineCrosscheckResult run_engine_crosscheck(
    const EngineCrosscheckConfig& config) {
  EngineCrosscheckResult result;
  LabeledTraffic labeled =
      generate_labeled_traffic(config.seed, config.frames, config.filter);
  result.filter = labeled.filter_text;
  if (!labeled.error.empty()) {
    result.problems.push_back("filter '" + labeled.filter_text +
                              "' failed to compile: " + labeled.error);
    return result;
  }
  const bpf::Program& prog = labeled.prog;
  const std::vector<GeneratedFrame>& traffic = labeled.frames;
  const std::set<std::uint32_t>& oracle = labeled.oracle;
  result.oracle_matched = oracle.size();

  // Small WireCAP geometry so the run cycles the pool; the other
  // factory entries ignore these fields.
  engines::EngineConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;

  const auto run_engine =
      [&](const std::string& name,
          const std::string& factory_name) -> EngineCrosscheckResult::PerEngine {
    sim::Scheduler scheduler;
    sim::IoBus bus{scheduler};
    nic::NicConfig nic_config;
    nic_config.num_rx_queues = 1;
    nic::MultiQueueNic nic{scheduler, bus, nic_config};
    auto engine = engines::make_engine(factory_name, nic, engine_config);
    sim::SimCore app_core{scheduler, 0};
    pcap::PcapHandle handle{scheduler, *engine, nic, 0, app_core};
    handle.set_filter(prog);

    for (std::size_t i = 0; i < traffic.size(); ++i) {
      nic.receive(net::WirePacket::from_bytes(
          Nanos::from_micros(2.0 * static_cast<double>(i + 1)),
          as_span(traffic[i].bytes),
          traffic[i].wire_len, i));
    }

    std::set<std::uint32_t> matched;
    const auto handler = [&](const pcap::PacketHeader&,
                             std::span<const std::byte> data) {
      if (data.size() < 10) {
        result.problems.push_back(name + ": delivered view shorter than marker");
        return;
      }
      const std::uint32_t idx = (static_cast<std::uint32_t>(data[6]) << 24) |
                                (static_cast<std::uint32_t>(data[7]) << 16) |
                                (static_cast<std::uint32_t>(data[8]) << 8) |
                                static_cast<std::uint32_t>(data[9]);
      if (!matched.insert(idx).second) {
        result.problems.push_back(name + ": duplicate delivery of frame " +
                                  std::to_string(idx));
      }
    };
    // Drain fully: captures free descriptors that admit more DMA, and
    // engines charge per-packet delays, so keep advancing virtual time
    // until two consecutive rounds deliver nothing.
    int idle_rounds = 0;
    while (idle_rounds < 2) {
      scheduler.run_until(scheduler.now() + Nanos::from_millis(5));
      idle_rounds = handle.dispatch(0, handler) > 0 ? 0 : idle_rounds + 1;
    }

    EngineCrosscheckResult::PerEngine per;
    per.name = name;
    per.matched = matched.size();
    const auto stats = handle.stats();
    per.recv = stats.ps_recv;
    per.drop = stats.ps_drop;
    per.ifdrop = stats.ps_ifdrop;
    if (per.drop != 0 || per.ifdrop != 0) {
      result.problems.push_back(name + ": dropped packets (drop=" +
                                std::to_string(per.drop) + " ifdrop=" +
                                std::to_string(per.ifdrop) + ")");
    }
    if (per.recv != traffic.size()) {
      result.problems.push_back(name + ": received " +
                                std::to_string(per.recv) + " of " +
                                std::to_string(traffic.size()));
    }
    if (matched != oracle) {
      std::size_t missing = 0, extra = 0;
      for (const auto idx : oracle) missing += matched.count(idx) == 0;
      for (const auto idx : matched) extra += oracle.count(idx) == 0;
      result.problems.push_back(
          name + ": match set diverges from oracle (missing=" +
          std::to_string(missing) + " extra=" + std::to_string(extra) + ")");
    }
    return per;
  };

  result.engines.push_back(run_engine("PF_RING", "PF_RING"));
  result.engines.push_back(run_engine("DNA", "DNA"));
  result.engines.push_back(run_engine("NETMAP", "NETMAP"));
  result.engines.push_back(run_engine("PSIOE", "PSIOE"));
  result.engines.push_back(run_engine("WireCAP", "WireCAP-B"));

  // The per-engine sets were each compared to the oracle; equal counts
  // across engines then certify identical sets.
  for (const auto& per : result.engines) {
    if (per.matched != result.oracle_matched &&
        result.problems.empty()) {
      result.problems.push_back(per.name + ": matched " +
                                std::to_string(per.matched) + " vs oracle " +
                                std::to_string(result.oracle_matched));
    }
  }

  if (config.telemetry != nullptr) {
    auto& reg = config.telemetry->registry;
    reg.counter("difftest.engine.frames")
        .add(static_cast<std::uint64_t>(traffic.size()) *
             result.engines.size());
    reg.counter("difftest.engine.mismatches").add(result.problems.size());
  }
  return result;
}

BatchEquivalenceResult run_batch_equivalence(
    const BatchEquivalenceConfig& config) {
  BatchEquivalenceResult result;
  LabeledTraffic labeled =
      generate_labeled_traffic(config.seed, config.frames, config.filter);
  result.filter = labeled.filter_text;
  if (!labeled.error.empty()) {
    result.problems.push_back("filter '" + labeled.filter_text +
                              "' failed to compile: " + labeled.error);
    return result;
  }
  result.oracle_matched = labeled.oracle.size();

  const bpf::Predecoded pre{labeled.prog};
  const std::size_t max_batch = std::max<std::uint32_t>(1, config.max_batch);

  engines::EngineConfig engine_config;
  engine_config.cells_per_chunk = 64;
  engine_config.chunk_count = 40;

  // Everything the comparison needs about one delivery, copied out at
  // read time (engine-buffered views go stale once released).
  struct Delivery {
    std::uint64_t seq = 0;
    std::uint32_t wire_len = 0;
    std::vector<std::byte> bytes;
    bool matched = false;
  };
  struct PathOutcome {
    std::vector<Delivery> deliveries;
    std::uint64_t batches = 0;
  };

  Xoshiro256 adversity{config.seed ^ 0x9e3779b97f4a7c15ULL};

  const auto run_path = [&](const std::string& factory_name,
                            bool batched) -> PathOutcome {
    PathOutcome out;
    sim::Scheduler scheduler;
    sim::IoBus bus{scheduler};
    nic::NicConfig nic_config;
    nic_config.num_rx_queues = 1;
    nic::MultiQueueNic nic{scheduler, bus, nic_config};
    auto engine = engines::make_engine(factory_name, nic, engine_config);
    sim::SimCore app_core{scheduler, 0};
    engine->open(0, app_core);

    for (std::size_t i = 0; i < labeled.frames.size(); ++i) {
      nic.receive(net::WirePacket::from_bytes(
          Nanos::from_micros(2.0 * static_cast<double>(i + 1)),
          as_span(labeled.frames[i].bytes), labeled.frames[i].wire_len, i));
    }

    const auto record = [&](const engines::CaptureView& view, bool matched) {
      Delivery d;
      d.seq = view.seq;
      d.wire_len = view.wire_len;
      d.bytes.assign(view.bytes.begin(), view.bytes.end());
      d.matched = matched;
      out.deliveries.push_back(std::move(d));
    };

    // Adversarial mode parks completed batches here and releases them
    // LIFO — deferred, out-of-order recycling.  The bytes were copied
    // out above, so engines whose views go stale on the next pull
    // (PSIOE's staging arena) stay comparable.
    std::vector<engines::PacketBatch> held;
    const auto release_held = [&] {
      while (!held.empty()) {
        engine->done_batch(0, held.back());
        held.pop_back();
      }
    };

    engines::PacketBatch batch;
    std::vector<std::uint8_t> accepts;
    int idle_rounds = 0;
    while (idle_rounds < 2) {
      scheduler.run_until(scheduler.now() + Nanos::from_millis(5));
      std::size_t drained = 0;
      if (batched) {
        for (;;) {
          std::size_t limit = max_batch;
          if (config.adversarial) {
            limit = 1 + adversity.next_below(max_batch);
          }
          const std::size_t n = engine->try_next_batch(0, limit, batch);
          if (n == 0) break;
          ++out.batches;
          drained += n;
          (void)pre.run_batch(batch, accepts);
          for (std::size_t i = 0; i < batch.views.size(); ++i) {
            record(batch.views[i], accepts[i] != 0);
          }
          if (config.adversarial && held.size() < 2 &&
              adversity.next_below(2) == 0) {
            held.push_back(std::move(batch));
            batch = engines::PacketBatch{};
          } else {
            engine->done_batch(0, batch);
            release_held();
          }
        }
        release_held();
      } else {
        while (const auto view = engine->try_next(0)) {
          ++drained;
          record(*view, pre.run(view->bytes, view->wire_len) != 0);
          engine->done(0, *view);
        }
      }
      idle_rounds = drained > 0 ? 0 : idle_rounds + 1;
    }
    engine->close(0);
    return out;
  };

  struct Entry {
    const char* display;
    const char* factory;
  };
  constexpr std::array<Entry, 5> kEngines{{{"PF_RING", "PF_RING"},
                                           {"DNA", "DNA"},
                                           {"NETMAP", "NETMAP"},
                                           {"PSIOE", "PSIOE"},
                                           {"WireCAP", "WireCAP-B"}}};
  for (const Entry& entry : kEngines) {
    const PathOutcome scalar = run_path(entry.factory, /*batched=*/false);
    const PathOutcome batched = run_path(entry.factory, /*batched=*/true);

    BatchEquivalenceResult::PerEngine per;
    per.name = entry.display;
    per.packets = batched.deliveries.size();
    per.batches = batched.batches;

    if (scalar.deliveries.size() != labeled.frames.size()) {
      result.problems.push_back(
          per.name + ": per-packet path delivered " +
          std::to_string(scalar.deliveries.size()) + " of " +
          std::to_string(labeled.frames.size()));
    }
    if (batched.deliveries.size() != scalar.deliveries.size()) {
      result.problems.push_back(
          per.name + ": batched path delivered " +
          std::to_string(batched.deliveries.size()) + " vs per-packet " +
          std::to_string(scalar.deliveries.size()));
    }
    const std::size_t common =
        std::min(scalar.deliveries.size(), batched.deliveries.size());
    for (std::size_t i = 0; i < common; ++i) {
      const Delivery& a = scalar.deliveries[i];
      const Delivery& b = batched.deliveries[i];
      if (a.seq != b.seq) {
        result.problems.push_back(per.name + ": delivery " +
                                  std::to_string(i) + " seq " +
                                  std::to_string(a.seq) + " vs " +
                                  std::to_string(b.seq));
        break;  // misalignment cascades; report the first
      }
      if (a.wire_len != b.wire_len || a.bytes != b.bytes) {
        result.problems.push_back(per.name + ": delivery " +
                                  std::to_string(i) + " (seq " +
                                  std::to_string(a.seq) +
                                  ") differs between paths");
      }
      if (a.matched != b.matched) {
        result.problems.push_back(per.name + ": seq " +
                                  std::to_string(a.seq) +
                                  " filter verdict differs (per-packet=" +
                                  std::to_string(a.matched) + " batched=" +
                                  std::to_string(b.matched) + ")");
      }
    }

    std::set<std::uint32_t> matched;
    for (const Delivery& d : batched.deliveries) {
      if (d.matched) matched.insert(static_cast<std::uint32_t>(d.seq));
    }
    per.matched = matched.size();
    if (matched != labeled.oracle) {
      std::size_t missing = 0, extra = 0;
      for (const auto idx : labeled.oracle) missing += matched.count(idx) == 0;
      for (const auto idx : matched) extra += labeled.oracle.count(idx) == 0;
      result.problems.push_back(
          per.name + ": batched match set diverges from oracle (missing=" +
          std::to_string(missing) + " extra=" + std::to_string(extra) + ")");
    }
    result.engines.push_back(per);
  }
  return result;
}

BatchEquivalenceSoakResult run_batch_equivalence_soak(
    std::uint64_t first_seed, std::uint32_t count,
    BatchEquivalenceConfig base) {
  BatchEquivalenceSoakResult soak;
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchEquivalenceConfig config = base;
    config.seed = first_seed + i;
    const BatchEquivalenceResult result = run_batch_equivalence(config);
    ++soak.seeds_run;
    for (const auto& per : result.engines) soak.total_packets += per.packets;
    soak.total_problems += result.problems.size();
    if (result.clean()) {
      ++soak.seeds_clean;
    } else {
      for (const auto& p : result.problems) {
        soak.failures.push_back("seed " + std::to_string(config.seed) + ": " +
                                p);
      }
    }
  }
  return soak;
}

}  // namespace wirecap::testing
