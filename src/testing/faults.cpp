#include "testing/faults.hpp"

#include <algorithm>

#include "core/wirecap_engine.hpp"
#include "net/packet.hpp"
#include "nic/device.hpp"
#include "sim/core.hpp"
#include "sim/costs.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::testing {

namespace {

/// Delay before a close attempt / between retries, letting in-flight
/// DMA into the queue complete (RxRing::reset requires a quiesced
/// ring).
constexpr Nanos kDmaSettle = Nanos::from_micros(20);
/// Gap between a successful close and the reopen — long enough for TX
/// requests still referencing the torn-down pool to leave the wire.
constexpr Nanos kReopenDelay = Nanos::from_micros(100);
constexpr Nanos kAppPollInterval = Nanos::from_micros(2);
constexpr int kCloseRetries = 50;

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDelayedRecycle: return "delayed-recycle";
    case FaultKind::kWithheldRecycle: return "withheld-recycle";
    case FaultKind::kAppStall: return "app-stall";
    case FaultKind::kTxBurst: return "tx-burst";
    case FaultKind::kPoolExhaust: return "pool-exhaust";
    case FaultKind::kTimeoutStorm: return "timeout-storm";
    case FaultKind::kQueueReopen: return "queue-reopen";
  }
  return "?";
}

FaultPlan FaultPlan::generate(const FaultPlanConfig& config) {
  FaultPlan plan;
  plan.seed_ = config.seed;
  Xoshiro256 rng{config.seed ^ 0xFA017EC7ULL};

  std::vector<FaultKind> kinds = {
      FaultKind::kDelayedRecycle, FaultKind::kWithheldRecycle,
      FaultKind::kAppStall,       FaultKind::kTxBurst,
      FaultKind::kPoolExhaust,    FaultKind::kTimeoutStorm,
  };
  if (config.allow_reopen) kinds.push_back(FaultKind::kQueueReopen);

  const double window = static_cast<double>(config.horizon.count());
  for (std::uint32_t i = 0; i < config.event_count; ++i) {
    FaultEvent event;
    // Leave the first 5% as warmup so adversity hits a flowing pipeline.
    event.at = Nanos{static_cast<std::int64_t>(
        window * (0.05 + 0.90 * rng.next_double()))};
    event.kind = kinds[rng.next_below(kinds.size())];
    event.queue = static_cast<std::uint32_t>(
        rng.next_below(config.num_queues));
    switch (event.kind) {
      case FaultKind::kDelayedRecycle:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(10, 80)));
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(4, 24));
        break;
      case FaultKind::kWithheldRecycle:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(500, 2000)));
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(2, 8));
        break;
      case FaultKind::kAppStall:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(20, 200)));
        break;
      case FaultKind::kTxBurst:
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(16, 64));
        break;
      case FaultKind::kPoolExhaust:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(50, 300)));
        break;
      case FaultKind::kTimeoutStorm:
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(3, 8));
        break;
      case FaultKind::kQueueReopen:
        break;
    }
    plan.events_.push_back(event);
  }
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at < b.at;
            });
  return plan;
}

FaultHarness::FaultHarness(FaultHarnessConfig config)
    : config_(config),
      plan_(FaultPlan::generate(config.plan)),
      rng_(config.plan.seed),
      bus_(scheduler_),
      auditor_(AuditorConfig{config.throw_on_violation, 64}) {
  const std::uint32_t queues = config_.plan.num_queues;

  nic::NicConfig nic_config;
  nic_config.nic_id = 1;
  nic_config.num_rx_queues = queues;
  nic_config.num_tx_queues = 1;
  nic_config.rx_ring_size = config_.rx_ring_size;
  nic_config.tx_ring_size = config_.tx_ring_size;
  nic_ = std::make_unique<nic::MultiQueueNic>(scheduler_, bus_, nic_config);

  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = config_.cells_per_chunk;
  engine_config.chunk_count = config_.chunk_count;
  engine_config.cell_size = 2048;
  if (config_.advanced_mode && queues > 1) {
    engine_config.offload_threshold = 0.5;
  }
  // Aggressive timing so the short horizon covers many rescue and poll
  // cycles.
  sim::CostModel costs;
  costs.partial_chunk_timeout = Nanos::from_micros(30);
  costs.capture_poll_interval = Nanos::from_micros(10);
  engine_ = std::make_unique<core::WirecapEngine>(scheduler_, *nic_,
                                                  engine_config, costs);

  // Auditor and telemetry attach *before* any queue opens: this is the
  // late-open binding path (metrics must appear when open() happens).
  engine_->set_pool_observer(&auditor_);
  engine_->bind_telemetry(telemetry_, "faults", queues);
  auditor_.bind_telemetry(telemetry_, "faults",
                          [this] { return scheduler_.now(); });

  apps_.resize(queues);
  queue_open_.assign(queues, false);
  for (std::uint32_t q = 0; q < queues; ++q) {
    app_cores_.push_back(std::make_unique<sim::SimCore>(scheduler_, 2000 + q));
    flows_.push_back(trace::flows_for_queue(rng_, q, queues, 4));
  }
}

FaultHarness::~FaultHarness() = default;

void FaultHarness::open_queue(std::uint32_t queue) {
  engine_->open(queue, *app_cores_[queue]);
  queue_open_[queue] = true;
  rebind_buddies();
}

void FaultHarness::rebind_buddies() {
  if (!config_.advanced_mode) return;
  std::vector<std::uint32_t> open;
  for (std::uint32_t q = 0; q < queue_open_.size(); ++q) {
    if (queue_open_[q]) open.push_back(q);
  }
  if (open.size() >= 2) engine_->set_buddy_group(open);
}

void FaultHarness::schedule_traffic(std::uint32_t queue, Nanos at) {
  if (at >= config_.plan.horizon) return;
  scheduler_.schedule_at(at, [this, queue] {
    AppState& app = apps_[queue];
    const auto& flows = flows_[queue];
    const std::uint32_t wire_len =
        64 + static_cast<std::uint32_t>(rng_.next_below(200));
    nic_->receive(net::WirePacket::make(
        scheduler_.now(), flows[rng_.next_below(flows.size())], wire_len,
        app.seq++));
    const double jitter = 0.2 + 1.6 * rng_.next_double();
    schedule_traffic(queue,
                     scheduler_.now() +
                         Nanos{static_cast<std::int64_t>(
                             jitter *
                             static_cast<double>(config_.mean_gap.count()))});
  });
}

void FaultHarness::release_due(std::uint32_t queue) {
  AppState& app = apps_[queue];
  const Nanos now = scheduler_.now();
  for (std::size_t i = 0; i < app.held.size();) {
    if (app.held[i].release_at <= now) {
      if (!queue_open_[queue]) ++late_releases_;
      engine_->done(queue, app.held[i].view);
      app.held[i] = app.held.back();
      app.held.pop_back();
    } else {
      ++i;
    }
  }
}

void FaultHarness::consume(std::uint32_t queue,
                           const engines::CaptureView& view) {
  AppState& app = apps_[queue];
  const Nanos now = scheduler_.now();
  if (app.tx_burst_remaining > 0) {
    --app.tx_burst_remaining;
    // forward() releases the chunk itself when the TX ring is full.
    if (engine_->forward(queue, view, *nic_, 0)) ++forwarded_;
    return;
  }
  if (app.exhaust_until > now) {
    app.held.push_back(HeldView{view, queue, app.exhaust_until});
    return;
  }
  if (app.delay_remaining > 0) {
    --app.delay_remaining;
    const double jitter = 0.5 + rng_.next_double();
    Nanos release =
        now + Nanos{static_cast<std::int64_t>(
                  jitter * static_cast<double>(app.delay_for.count()))};
    // Everything must be released before the final audit.
    const Nanos latest = config_.plan.horizon +
                         Nanos{config_.drain.count() / 2};
    if (release > latest) release = latest;
    app.held.push_back(HeldView{view, queue, release});
    return;
  }
  engine_->done(queue, view);
}

void FaultHarness::app_poll(std::uint32_t queue) {
  AppState& app = apps_[queue];
  const Nanos now = scheduler_.now();
  release_due(queue);
  if (queue_open_[queue] && now >= app.stall_until) {
    int budget = 32;
    while (budget-- > 0) {
      auto view = engine_->try_next(queue);
      if (!view) break;
      consume(queue, *view);
    }
  }
  if (now < end_of_run_) {
    const Nanos jitter{static_cast<std::int64_t>(rng_.next_below(1000))};
    scheduler_.schedule_after(kAppPollInterval + jitter,
                              [this, queue] { app_poll(queue); });
  }
}

void FaultHarness::apply(const FaultEvent& event) {
  AppState& app = apps_[event.queue];
  const Nanos now = scheduler_.now();
  switch (event.kind) {
    case FaultKind::kDelayedRecycle:
    case FaultKind::kWithheldRecycle:
      app.delay_remaining += event.magnitude;
      app.delay_for = event.duration;
      break;
    case FaultKind::kAppStall:
      app.stall_until = std::max(app.stall_until, now + event.duration);
      break;
    case FaultKind::kTxBurst:
      app.tx_burst_remaining += event.magnitude;
      break;
    case FaultKind::kPoolExhaust:
      app.exhaust_until = std::max(app.exhaust_until, now + event.duration);
      break;
    case FaultKind::kTimeoutStorm: {
      // Sub-chunk bursts spaced past the partial-chunk timeout: each
      // one can only leave the ring via the rescue path.
      const Nanos gap = Nanos::from_micros(45);  // 1.5x the timeout
      for (std::uint32_t burst = 0; burst < event.magnitude; ++burst) {
        const std::uint32_t pkts = 1 + static_cast<std::uint32_t>(
            rng_.next_below(config_.cells_per_chunk - 1));
        const std::uint32_t queue = event.queue;
        scheduler_.schedule_after(
            Nanos{gap.count() * (burst + 1)}, [this, queue, pkts] {
              for (std::uint32_t p = 0; p < pkts; ++p) {
                nic_->receive(net::WirePacket::make(
                    scheduler_.now(), flows_[queue][0], 64,
                    apps_[queue].seq++));
              }
            });
      }
      break;
    }
    case FaultKind::kQueueReopen: {
      if (!queue_open_[event.queue]) break;
      const std::uint32_t queue = event.queue;
      // Closing needs a quiesced ring: retry past in-flight DMA.
      auto attempt = std::make_shared<std::function<void(int)>>();
      *attempt = [this, queue, attempt](int retries) {
        if (!queue_open_[queue]) return;
        if (nic_->rx_ring(queue).dma_in_flight() && retries > 0) {
          scheduler_.schedule_after(
              kDmaSettle, [attempt, retries] { (*attempt)(retries - 1); });
          return;
        }
        engine_->close(queue);
        queue_open_[queue] = false;
        ++reopens_;
        scheduler_.schedule_after(kReopenDelay,
                                  [this, queue] { open_queue(queue); });
      };
      scheduler_.schedule_after(kDmaSettle,
                                [attempt] { (*attempt)(kCloseRetries); });
      break;
    }
  }
}

void FaultHarness::audit_tick() {
  for (std::uint32_t q = 0; q < queue_open_.size(); ++q) {
    // The conservation law only holds for an open ring: a closed one
    // intentionally strands app-held chunks behind the epoch bump.
    if (queue_open_[q]) auditor_.check_conservation(*engine_, q);
  }
  if (scheduler_.now() < end_of_run_) {
    scheduler_.schedule_after(config_.check_interval,
                              [this] { audit_tick(); });
  }
}

FaultRunResult FaultHarness::run() {
  end_of_run_ = config_.plan.horizon + config_.drain;

  for (std::uint32_t q = 0; q < config_.plan.num_queues; ++q) {
    open_queue(q);
    schedule_traffic(q, Nanos{static_cast<std::int64_t>(
                            rng_.next_below(
                                static_cast<std::uint64_t>(
                                    config_.mean_gap.count())))});
    scheduler_.schedule_at(Nanos::zero(), [this, q] { app_poll(q); });
  }
  for (const FaultEvent& event : plan_.events()) {
    scheduler_.schedule_at(event.at, [this, event] { apply(event); });
  }
  scheduler_.schedule_after(config_.check_interval, [this] { audit_tick(); });

  scheduler_.run_until(end_of_run_);

  // Straggler releases (clamped to before end_of_run_, but be safe),
  // then the final audit on a fully quiesced fabric.
  for (std::uint32_t q = 0; q < config_.plan.num_queues; ++q) {
    AppState& app = apps_[q];
    while (!app.held.empty()) {
      if (!queue_open_[q]) ++late_releases_;
      engine_->done(q, app.held.back().view);
      app.held.pop_back();
    }
  }
  scheduler_.run_until(end_of_run_ + Nanos::from_millis(1));
  for (std::uint32_t q = 0; q < queue_open_.size(); ++q) {
    if (queue_open_[q]) auditor_.check_conservation(*engine_, q);
  }

  FaultRunResult result;
  result.seed = plan_.seed();
  result.auditor = auditor_.stats();
  result.forwarded = forwarded_;
  result.reopens = reopens_;
  result.late_releases = late_releases_;
  result.violations = auditor_.violations();
  for (std::uint32_t q = 0; q < config_.plan.num_queues; ++q) {
    result.delivered += engine_->queue_stats(q).delivered;
  }
  return result;
}

SoakResult run_fault_soak(std::uint64_t first_seed, std::uint32_t count,
                          FaultHarnessConfig base) {
  SoakResult soak;
  for (std::uint32_t i = 0; i < count; ++i) {
    base.plan.seed = first_seed + i;
    FaultHarness harness{base};
    const FaultRunResult result = harness.run();
    ++soak.seeds_run;
    if (result.clean()) ++soak.seeds_clean;
    soak.total_violations += result.auditor.violations;
    soak.total_transitions += result.auditor.transitions;
    soak.total_conservation_checks += result.auditor.conservation_checks;
    soak.total_delivered += result.delivered;
    soak.total_reopens += result.reopens;
    if (!result.clean()) {
      soak.failures.push_back(
          "seed " + std::to_string(result.seed) + ": " +
          (result.violations.empty() ? "(no message recorded)"
                                     : result.violations.front()));
    }
  }
  return soak;
}

}  // namespace wirecap::testing
