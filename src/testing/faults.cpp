#include "testing/faults.hpp"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "core/wirecap_engine.hpp"
#include "net/packet.hpp"
#include "nic/device.hpp"
#include "sim/core.hpp"
#include "sim/costs.hpp"
#include "store/reader.hpp"
#include "trace/flow_gen.hpp"

namespace wirecap::testing {

namespace {

/// Delay before a close attempt / between retries, letting in-flight
/// DMA into the queue complete (RxRing::reset requires a quiesced
/// ring).
constexpr Nanos kDmaSettle = Nanos::from_micros(20);
/// Gap between a successful close and the reopen — long enough for TX
/// requests still referencing the torn-down pool to leave the wire.
constexpr Nanos kReopenDelay = Nanos::from_micros(100);
constexpr Nanos kAppPollInterval = Nanos::from_micros(2);
constexpr int kCloseRetries = 50;

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDelayedRecycle: return "delayed-recycle";
    case FaultKind::kWithheldRecycle: return "withheld-recycle";
    case FaultKind::kAppStall: return "app-stall";
    case FaultKind::kTxBurst: return "tx-burst";
    case FaultKind::kPoolExhaust: return "pool-exhaust";
    case FaultKind::kTimeoutStorm: return "timeout-storm";
    case FaultKind::kQueueReopen: return "queue-reopen";
    case FaultKind::kSlowDisk: return "slow-disk";
    case FaultKind::kDiskFull: return "disk-full";
    case FaultKind::kTenantExhaust: return "tenant-exhaust";
  }
  return "?";
}

FaultPlan FaultPlan::generate(const FaultPlanConfig& config) {
  FaultPlan plan;
  plan.seed_ = config.seed;
  Xoshiro256 rng{config.seed ^ 0xFA017EC7ULL};

  std::vector<FaultKind> kinds = {
      FaultKind::kDelayedRecycle, FaultKind::kWithheldRecycle,
      FaultKind::kAppStall,       FaultKind::kTxBurst,
      FaultKind::kPoolExhaust,    FaultKind::kTimeoutStorm,
  };
  if (config.allow_reopen) kinds.push_back(FaultKind::kQueueReopen);
  if (config.spool_faults) {
    kinds.push_back(FaultKind::kSlowDisk);
    kinds.push_back(FaultKind::kDiskFull);
  }
  if (config.num_tenants > 1) kinds.push_back(FaultKind::kTenantExhaust);

  const std::uint32_t fault_queues =
      config.fault_queue_limit == 0
          ? config.num_queues
          : std::min(config.fault_queue_limit, config.num_queues);

  const double window = static_cast<double>(config.horizon.count());
  for (std::uint32_t i = 0; i < config.event_count; ++i) {
    FaultEvent event;
    // Leave the first 5% as warmup so adversity hits a flowing pipeline.
    event.at = Nanos{static_cast<std::int64_t>(
        window * (0.05 + 0.90 * rng.next_double()))};
    event.kind = kinds[rng.next_below(kinds.size())];
    event.queue = static_cast<std::uint32_t>(rng.next_below(fault_queues));
    switch (event.kind) {
      case FaultKind::kDelayedRecycle:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(10, 80)));
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(4, 24));
        break;
      case FaultKind::kWithheldRecycle:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(500, 2000)));
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(2, 8));
        break;
      case FaultKind::kAppStall:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(20, 200)));
        break;
      case FaultKind::kTxBurst:
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(16, 64));
        break;
      case FaultKind::kPoolExhaust:
      case FaultKind::kTenantExhaust:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(50, 300)));
        break;
      case FaultKind::kTimeoutStorm:
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(3, 8));
        break;
      case FaultKind::kQueueReopen:
        break;
      case FaultKind::kSlowDisk:
        // Long enough that the backlog builds into the offload feedback,
        // short enough that the drain window clears it.
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(100, 400)));
        event.magnitude = static_cast<std::uint32_t>(rng.next_in(4, 16));
        break;
      case FaultKind::kDiskFull:
        event.duration = Nanos::from_micros(
            static_cast<double>(rng.next_in(50, 200)));
        break;
    }
    plan.events_.push_back(event);
  }
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at < b.at;
            });
  return plan;
}

FaultHarness::FaultHarness(FaultHarnessConfig config)
    : config_(config),
      plan_(FaultPlan::generate(config.plan)),
      rng_(config.plan.seed),
      bus_(scheduler_),
      auditor_(AuditorConfig{config.throw_on_violation, 64}) {
  const std::uint32_t queues = config_.plan.num_queues;

  nic::NicConfig nic_config;
  nic_config.nic_id = 1;
  nic_config.num_rx_queues = queues;
  nic_config.num_tx_queues = 1;
  nic_config.rx_ring_size = config_.rx_ring_size;
  nic_config.tx_ring_size = config_.tx_ring_size;
  nic_ = std::make_unique<nic::MultiQueueNic>(scheduler_, bus_, nic_config);

  core::WirecapConfig engine_config;
  engine_config.cells_per_chunk = config_.cells_per_chunk;
  engine_config.chunk_count = config_.chunk_count;
  engine_config.cell_size = 2048;
  engine_config.handoff = config_.handoff;
  if (config_.advanced_mode && queues > 1) {
    engine_config.offload_threshold = 0.5;
  }
  // Aggressive timing so the short horizon covers many rescue and poll
  // cycles.
  costs_.partial_chunk_timeout = Nanos::from_micros(30);
  costs_.capture_poll_interval = Nanos::from_micros(10);
  engine_ = std::make_unique<core::WirecapEngine>(scheduler_, *nic_,
                                                  engine_config, costs_);

  // Auditor and telemetry attach *before* any queue opens: this is the
  // late-open binding path (metrics must appear when open() happens).
  // Latency tracking is enabled first so the engine's per-queue bind
  // sees it and publishes the latency gauges.
  if (config_.latency) {
    telemetry_.latency.set_outlier_threshold(config_.latency_outlier_threshold);
    telemetry_.latency.set_enabled(true);
  }
  engine_->set_pool_observer(&auditor_);
  engine_->bind_telemetry(telemetry_, "faults", queues);
  auditor_.bind_telemetry(telemetry_, "faults",
                          [this] { return scheduler_.now(); });

  apps_.resize(queues);
  queue_open_.assign(queues, false);
  for (std::uint32_t q = 0; q < queues; ++q) {
    app_cores_.push_back(std::make_unique<sim::SimCore>(scheduler_, 2000 + q));
    flows_.push_back(trace::flows_for_queue(rng_, q, queues, 4));
    queue_rngs_.emplace_back(config_.plan.seed ^
                             (0x9E3779B97F4A7C15ULL * (q + 1)));
  }

  if (config_.spool) {
    held_chunks_.resize(queues);
    spool_dir_ = config_.spool_dir;
    if (spool_dir_.empty()) {
      spool_dir_ = std::filesystem::temp_directory_path() /
                   ("wirecap-fault-spool-" + std::to_string(::getpid()) +
                    "-seed" + std::to_string(config_.plan.seed));
    }
    std::filesystem::remove_all(spool_dir_);
    store::SpoolConfig spool_config;
    spool_config.dir = spool_dir_;
    spool_config.num_shards = queues;
    spool_config.policy = config_.spool_policy;
    // Small bounds so backpressure and segment rotation actually engage
    // under the harness's tiny geometry.
    spool_config.queue_capacity_chunks = 8;
    spool_config.segment_max_bytes = 64u << 10;
    spool_config.segment_max_span = Nanos::from_micros(500);
    spool_config.record_lost_seqs = true;
    spool_ = std::make_unique<store::Spool>(scheduler_, costs_, spool_config);
    spool_->bind_telemetry(telemetry_, "faults.store");
    for (std::uint32_t q = 0; q < queues; ++q) {
      store::SpoolShard* shard = &spool_->shard(q);
      engine_->set_spool_backlog_probe(q, [shard] { return shard->backlog(); });
      // Namespaced traffic seqs give every packet a globally unique id
      // for the round-trip conservation audit.
      apps_[q].seq = static_cast<std::uint64_t>(q) << 40;
    }
  }
}

FaultHarness::~FaultHarness() = default;

void FaultHarness::open_queue(std::uint32_t queue) {
  engine_->open(queue, *app_cores_[queue]);
  queue_open_[queue] = true;
  rebind_buddies();
}

std::uint32_t FaultHarness::tenant_of(std::uint32_t queue) const {
  const std::uint32_t tenants = std::max(1u, config_.plan.num_tenants);
  return queue * tenants / config_.plan.num_queues;
}

void FaultHarness::rebind_buddies() {
  if (!config_.advanced_mode) return;
  // Each tenant re-registers over its currently-open member queues
  // (registration is an upsert by name, so reopen cycles just refresh
  // the spec).  A tenant with every queue closed keeps its stale spec;
  // the engine already ignores closed buddies in dispatch.
  const std::uint32_t tenants = std::max(1u, config_.plan.num_tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    engines::TenantSpec spec;
    spec.name = "t";
    spec.name += std::to_string(t);
    spec.chunk_quota = config_.tenant_quota;
    for (std::uint32_t q = 0; q < queue_open_.size(); ++q) {
      if (queue_open_[q] && tenant_of(q) == t) spec.queues.push_back(q);
    }
    // The single-tenant harness keeps the historical behaviour: no
    // buddy group until at least two queues are up.
    const std::size_t min_queues = tenants == 1 ? 2 : 1;
    if (spec.queues.size() >= min_queues) engine_->register_tenant(spec);
  }
}

void FaultHarness::schedule_traffic(std::uint32_t queue, Nanos at) {
  if (at >= config_.plan.horizon) return;
  scheduler_.schedule_at(at, [this, queue] {
    AppState& app = apps_[queue];
    const auto& flows = flows_[queue];
    Xoshiro256& rng = queue_rngs_[queue];
    const std::uint32_t wire_len =
        64 + static_cast<std::uint32_t>(rng.next_below(200));
    nic_->receive(net::WirePacket::make(
        scheduler_.now(), flows[rng.next_below(flows.size())], wire_len,
        app.seq++));
    const double jitter = 0.2 + 1.6 * rng.next_double();
    schedule_traffic(queue,
                     scheduler_.now() +
                         Nanos{static_cast<std::int64_t>(
                             jitter *
                             static_cast<double>(config_.mean_gap.count()))});
  });
}

void FaultHarness::release_due(std::uint32_t queue) {
  AppState& app = apps_[queue];
  const Nanos now = scheduler_.now();
  for (std::size_t i = 0; i < app.held.size();) {
    if (app.held[i].release_at <= now) {
      if (!queue_open_[queue]) ++late_releases_;
      engine_->done(queue, app.held[i].view);
      app.held[i] = app.held.back();
      app.held.pop_back();
    } else {
      ++i;
    }
  }
}

void FaultHarness::consume(std::uint32_t queue,
                           const engines::CaptureView& view) {
  AppState& app = apps_[queue];
  const Nanos now = scheduler_.now();
  if (app.tx_burst_remaining > 0) {
    --app.tx_burst_remaining;
    // forward() releases the chunk itself when the TX ring is full.
    if (engine_->forward(queue, view, *nic_, 0)) ++forwarded_;
    return;
  }
  if (app.exhaust_until > now) {
    app.held.push_back(HeldView{view, queue, app.exhaust_until});
    return;
  }
  if (app.delay_remaining > 0) {
    --app.delay_remaining;
    const double jitter = 0.5 + rng_.next_double();
    Nanos release =
        now + Nanos{static_cast<std::int64_t>(
                  jitter * static_cast<double>(app.delay_for.count()))};
    // Everything must be released before the final audit.
    const Nanos latest = config_.plan.horizon +
                         Nanos{config_.drain.count() / 2};
    if (release > latest) release = latest;
    app.held.push_back(HeldView{view, queue, release});
    return;
  }
  engine_->done(queue, view);
}

void FaultHarness::app_poll(std::uint32_t queue) {
  AppState& app = apps_[queue];
  const Nanos now = scheduler_.now();
  if (spool_) {
    release_due_chunks(queue);
  } else {
    release_due(queue);
  }
  if (queue_open_[queue] && now >= app.stall_until) {
    if (spool_) {
      spool_poll(queue);
    } else {
      int budget = 32;
      while (budget-- > 0) {
        auto view = engine_->try_next(queue);
        if (!view) break;
        consume(queue, *view);
      }
    }
  }
  if (now < end_of_run_) {
    const Nanos jitter{
        static_cast<std::int64_t>(queue_rngs_[queue].next_below(1000))};
    scheduler_.schedule_after(kAppPollInterval + jitter,
                              [this, queue] { app_poll(queue); });
  }
}

void FaultHarness::spool_poll(std::uint32_t queue) {
  AppState& app = apps_[queue];
  store::SpoolShard& shard = spool_->shard(queue);
  const Nanos now = scheduler_.now();
  int budget = 4;  // chunks, not packets
  while (budget-- > 0) {
    // The blocking-policy handshake: a full shard pushes back here, the
    // chunks pile into the engine's capture queue, and the spool-backlog
    // probe folds them into the buddy-group offload decision.
    if (shard.policy() == store::BackpressurePolicy::kBlock &&
        !shard.accepting()) {
      break;
    }
    auto chunk = engine_->try_next_chunk(queue);
    if (!chunk) break;
    for (const engines::CaptureView& view : chunk->packets) {
      expected_seqs_.insert(view.seq);
    }
    // The per-packet holding faults hold whole chunks here.
    if (app.exhaust_until > now) {
      held_chunks_[queue].push_back(
          HeldChunk{std::move(*chunk), app.exhaust_until});
      continue;
    }
    if (app.delay_remaining > 0) {
      --app.delay_remaining;
      const double jitter = 0.5 + rng_.next_double();
      Nanos release =
          now + Nanos{static_cast<std::int64_t>(
                    jitter * static_cast<double>(app.delay_for.count()))};
      const Nanos latest = config_.plan.horizon +
                           Nanos{config_.drain.count() / 2};
      if (release > latest) release = latest;
      held_chunks_[queue].push_back(HeldChunk{std::move(*chunk), release});
      continue;
    }
    offer_chunk(queue, std::move(*chunk));
  }
}

void FaultHarness::offer_chunk(std::uint32_t queue,
                               engines::ChunkCaptureView&& chunk) {
  spool_->shard(queue).offer(
      std::move(chunk), [this, queue](const engines::ChunkCaptureView& done) {
        if (!queue_open_[queue]) ++late_releases_;
        engine_->done_chunk(queue, done);
      });
}

void FaultHarness::release_due_chunks(std::uint32_t queue) {
  auto& held = held_chunks_[queue];
  const Nanos now = scheduler_.now();
  for (std::size_t i = 0; i < held.size();) {
    if (held[i].release_at <= now) {
      offer_chunk(queue, std::move(held[i].chunk));
      held[i] = std::move(held.back());
      held.pop_back();
    } else {
      ++i;
    }
  }
}

void FaultHarness::evict_ring_from_spool(std::uint32_t ring) {
  if (!spool_) return;
  for (std::uint32_t s = 0; s < spool_->num_shards(); ++s) {
    spool_->shard(s).evict_ring(ring);
  }
  // Held chunks of that ring dangle too once the pool is torn down:
  // release them now (the epoch is still current) and write off their
  // packets.
  for (std::uint32_t q = 0; q < held_chunks_.size(); ++q) {
    auto& held = held_chunks_[q];
    for (std::size_t i = 0; i < held.size();) {
      if (held[i].chunk.source_ring == ring) {
        for (const engines::CaptureView& view : held[i].chunk.packets) {
          expected_seqs_.erase(view.seq);
          ++spool_lost_;
        }
        engine_->done_chunk(q, held[i].chunk);
        held[i] = std::move(held.back());
        held.pop_back();
      } else {
        ++i;
      }
    }
  }
}

void FaultHarness::apply(const FaultEvent& event) {
  AppState& app = apps_[event.queue];
  const Nanos now = scheduler_.now();
  switch (event.kind) {
    case FaultKind::kDelayedRecycle:
    case FaultKind::kWithheldRecycle:
      app.delay_remaining += event.magnitude;
      app.delay_for = event.duration;
      break;
    case FaultKind::kAppStall:
      app.stall_until = std::max(app.stall_until, now + event.duration);
      break;
    case FaultKind::kTxBurst:
      app.tx_burst_remaining += event.magnitude;
      break;
    case FaultKind::kPoolExhaust:
      app.exhaust_until = std::max(app.exhaust_until, now + event.duration);
      break;
    case FaultKind::kTenantExhaust:
      // Every queue of the hit tenant withholds at once: the whole
      // tenant burns through its quota while its neighbours' budgets
      // must stay untouched (the per-tenant conservation audit checks).
      for (std::uint32_t q = 0; q < apps_.size(); ++q) {
        if (tenant_of(q) == tenant_of(event.queue)) {
          apps_[q].exhaust_until =
              std::max(apps_[q].exhaust_until, now + event.duration);
        }
      }
      break;
    case FaultKind::kTimeoutStorm: {
      // Sub-chunk bursts spaced past the partial-chunk timeout: each
      // one can only leave the ring via the rescue path.
      const Nanos gap = Nanos::from_micros(45);  // 1.5x the timeout
      for (std::uint32_t burst = 0; burst < event.magnitude; ++burst) {
        const std::uint32_t pkts = 1 + static_cast<std::uint32_t>(
            rng_.next_below(config_.cells_per_chunk - 1));
        const std::uint32_t queue = event.queue;
        scheduler_.schedule_after(
            Nanos{gap.count() * (burst + 1)}, [this, queue, pkts] {
              for (std::uint32_t p = 0; p < pkts; ++p) {
                nic_->receive(net::WirePacket::make(
                    scheduler_.now(), flows_[queue][0], 64,
                    apps_[queue].seq++));
              }
            });
      }
      break;
    }
    case FaultKind::kQueueReopen: {
      if (!queue_open_[event.queue]) break;
      const std::uint32_t queue = event.queue;
      // Closing needs a quiesced ring: retry past in-flight DMA.
      auto attempt = std::make_shared<std::function<void(int)>>();
      *attempt = [this, queue, attempt](int retries) {
        if (!queue_open_[queue]) return;
        if (nic_->rx_ring(queue).dma_in_flight() && retries > 0) {
          scheduler_.schedule_after(
              kDmaSettle, [attempt, retries] { (*attempt)(retries - 1); });
          return;
        }
        // Spooled chunks of this ring reference its pool cells: pull
        // them out of every shard queue (and our held lists) before the
        // pool is torn down.
        evict_ring_from_spool(queue);
        engine_->close(queue);
        queue_open_[queue] = false;
        ++reopens_;
        scheduler_.schedule_after(kReopenDelay,
                                  [this, queue] { open_queue(queue); });
      };
      scheduler_.schedule_after(kDmaSettle,
                                [attempt] { (*attempt)(kCloseRetries); });
      break;
    }
    case FaultKind::kSlowDisk:
      if (spool_) {
        spool_->shard(event.queue)
            .set_slow_disk(static_cast<double>(std::max(2u, event.magnitude)),
                           now + event.duration);
      }
      break;
    case FaultKind::kDiskFull:
      if (spool_) {
        spool_->shard(event.queue).set_disk_full(now + event.duration);
      }
      break;
  }
}

void FaultHarness::audit_tick() {
  for (std::uint32_t q = 0; q < queue_open_.size(); ++q) {
    // The conservation law only holds for an open ring: a closed one
    // intentionally strands app-held chunks behind the epoch bump.
    if (queue_open_[q]) auditor_.check_conservation(*engine_, q);
  }
  audit_tenants();
  if (scheduler_.now() < end_of_run_) {
    scheduler_.schedule_after(config_.check_interval,
                              [this] { audit_tick(); });
  }
}

void FaultHarness::audit_tenants() {
  if (config_.plan.num_tenants <= 1) return;
  // The per-tenant census is only well-defined while all the tenant's
  // member queues are open (close() settles the account by crediting
  // the stranded charge).
  const auto& specs = engine_->tenants();
  for (std::uint32_t t = 0; t < specs.size(); ++t) {
    bool all_open = !specs[t].queues.empty();
    for (const std::uint32_t q : specs[t].queues) {
      if (q >= queue_open_.size() || !queue_open_[q]) all_open = false;
    }
    if (all_open) auditor_.check_tenant_conservation(*engine_, t);
  }
}

FaultRunResult FaultHarness::run() {
  end_of_run_ = config_.plan.horizon + config_.drain;

  for (std::uint32_t q = 0; q < config_.plan.num_queues; ++q) {
    open_queue(q);
    schedule_traffic(q, Nanos{static_cast<std::int64_t>(
                            rng_.next_below(
                                static_cast<std::uint64_t>(
                                    config_.mean_gap.count())))});
    scheduler_.schedule_at(Nanos::zero(), [this, q] { app_poll(q); });
  }
  for (const FaultEvent& event : plan_.events()) {
    scheduler_.schedule_at(event.at, [this, event] { apply(event); });
  }
  scheduler_.schedule_after(config_.check_interval, [this] { audit_tick(); });

  scheduler_.run_until(end_of_run_);

  // Straggler releases (clamped to before end_of_run_, but be safe),
  // then the final audit on a fully quiesced fabric.
  for (std::uint32_t q = 0; q < config_.plan.num_queues; ++q) {
    AppState& app = apps_[q];
    while (!app.held.empty()) {
      if (!queue_open_[q]) ++late_releases_;
      engine_->done(q, app.held.back().view);
      app.held.pop_back();
    }
    if (spool_) {
      auto& held = held_chunks_[q];
      while (!held.empty()) {
        offer_chunk(q, std::move(held.back().chunk));
        held.pop_back();
      }
    }
  }
  scheduler_.run_until(end_of_run_ + Nanos::from_millis(1));
  if (spool_) {
    drain_spool();
    spool_->close();
    // Reconcile counted shard losses (drop policies, ring evictions)
    // against the expectation set before the round-trip audit.
    for (std::uint32_t s = 0; s < spool_->num_shards(); ++s) {
      for (const std::uint64_t seq : spool_->shard(s).lost_seqs()) {
        if (expected_seqs_.erase(seq) > 0) ++spool_lost_;
      }
    }
  }
  for (std::uint32_t q = 0; q < queue_open_.size(); ++q) {
    if (queue_open_[q]) auditor_.check_conservation(*engine_, q);
  }
  audit_tenants();

  FaultRunResult result;
  result.seed = plan_.seed();
  result.auditor = auditor_.stats();
  result.forwarded = forwarded_;
  result.reopens = reopens_;
  result.late_releases = late_releases_;
  result.violations = auditor_.violations();
  result.queue_delivered.resize(config_.plan.num_queues, 0);
  result.tenant_delivered.resize(std::max(1u, config_.plan.num_tenants), 0);
  for (std::uint32_t q = 0; q < config_.plan.num_queues; ++q) {
    const std::uint64_t delivered = engine_->queue_stats(q).delivered;
    result.delivered += delivered;
    result.queue_delivered[q] = delivered;
    result.tenant_delivered[tenant_of(q)] += delivered;
  }
  if (spool_) result.spool = verify_spool();
  return result;
}

void FaultHarness::drain_spool() {
  // Every queued write completes in bounded virtual time (disk-full
  // windows expire), so stepping the clock forward must converge.
  Nanos deadline = scheduler_.now();
  for (int i = 0; i < 10'000 && !spool_->drained(); ++i) {
    deadline += Nanos::from_micros(100);
    scheduler_.run_until(deadline);
  }
}

SpoolRunSummary FaultHarness::verify_spool() {
  SpoolRunSummary summary;
  summary.dir = spool_dir_;
  summary.packets_expected = expected_seqs_.size();
  summary.packets_lost = spool_lost_;
  const auto problem = [&summary](std::string message) {
    if (summary.problems.size() < 16) {
      summary.problems.push_back(std::move(message));
    }
  };
  if (!spool_->drained()) {
    ++summary.conservation_failures;
    problem("spool failed to drain within the settle window");
  }

  store::StoreReader reader(spool_dir_);
  summary.segments = reader.segments().size();
  std::unordered_set<std::uint64_t> seen;
  Nanos last = Nanos::zero();
  reader.read_merged({}, [&](const net::PcapngRecord& record,
                             std::uint32_t shard) {
    ++summary.packets_merged;
    if (record.timestamp < last) {
      ++summary.order_violations;
      problem("merged stream went backwards at shard " +
              std::to_string(shard) + ", ts " +
              std::to_string(record.timestamp.count()));
    }
    last = record.timestamp;
    if (!record.packet_id) {
      ++summary.conservation_failures;
      problem("spooled record without a packet id");
      return;
    }
    const std::uint64_t seq = *record.packet_id;
    if (expected_seqs_.count(seq) == 0) {
      ++summary.conservation_failures;
      problem("unexpected seq " + std::to_string(seq) + " in the spool");
    } else if (!seen.insert(seq).second) {
      ++summary.conservation_failures;
      problem("duplicate seq " + std::to_string(seq) + " in the spool");
    }
  });
  if (seen.size() != expected_seqs_.size()) {
    const std::uint64_t missing = expected_seqs_.size() - seen.size();
    summary.conservation_failures += missing;
    problem(std::to_string(missing) +
            " consumed packet(s) missing from the spool");
  }
  return summary;
}

SoakResult run_fault_soak(std::uint64_t first_seed, std::uint32_t count,
                          FaultHarnessConfig base) {
  SoakResult soak;
  for (std::uint32_t i = 0; i < count; ++i) {
    base.plan.seed = first_seed + i;
    FaultHarness harness{base};
    const FaultRunResult result = harness.run();
    ++soak.seeds_run;
    if (result.clean()) ++soak.seeds_clean;
    soak.total_violations += result.auditor.violations;
    soak.total_transitions += result.auditor.transitions;
    soak.total_conservation_checks += result.auditor.conservation_checks;
    soak.total_tenant_checks += result.auditor.tenant_checks;
    soak.total_delivered += result.delivered;
    soak.total_reopens += result.reopens;
    if (result.spool) {
      const SpoolRunSummary& spool = *result.spool;
      soak.total_spooled += spool.packets_merged;
      soak.total_spool_lost += spool.packets_lost;
      soak.total_spool_failures +=
          spool.order_violations + spool.conservation_failures;
      // Harness-picked temp spools are disposable once verified clean;
      // a dirty one is left behind for inspection.
      if (base.spool_dir.empty() && spool.clean()) {
        std::error_code ec;
        std::filesystem::remove_all(spool.dir, ec);
      }
    }
    if (!result.clean()) {
      std::string message = "(no message recorded)";
      if (!result.violations.empty()) {
        message = result.violations.front();
      } else if (result.spool && !result.spool->problems.empty()) {
        message = result.spool->problems.front();
      }
      soak.failures.push_back("seed " + std::to_string(result.seed) + ": " +
                              message);
    }
  }
  return soak;
}

}  // namespace wirecap::testing
