// Lightweight status/result types for fallible operations on hot paths,
// where exceptions would be inappropriate.  Configuration-time errors
// throw std::invalid_argument / std::runtime_error instead.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace wirecap {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kWouldBlock,       // no data available right now
  kQueueFull,        // bounded queue at capacity
  kExhausted,        // a pool/ring ran out of resources
  kInvalidArgument,  // caller passed bad metadata / out-of-range value
  kNotFound,         // named entity does not exist
  kPermissionDenied, // metadata validation failed (foreign chunk, etc.)
  kClosed,           // operation on a closed queue/device
  kTimeout,          // blocking operation timed out
  kInternal,         // invariant violation (bug)
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kWouldBlock: return "would-block";
    case StatusCode::kQueueFull: return "queue-full";
    case StatusCode::kExhausted: return "exhausted";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kPermissionDenied: return "permission-denied";
    case StatusCode::kClosed: return "closed";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A status code with no payload.  Cheap to copy and compare.
class Status {
 public:
  constexpr Status() = default;
  constexpr explicit Status(StatusCode code) : code_(code) {}

  [[nodiscard]] static constexpr Status ok() { return Status{}; }

  [[nodiscard]] constexpr bool is_ok() const {
    return code_ == StatusCode::kOk;
  }
  [[nodiscard]] constexpr StatusCode code() const { return code_; }
  [[nodiscard]] std::string_view message() const { return to_string(code_); }

  constexpr bool operator==(const Status&) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
};

/// Either a value or a StatusCode; modelled on std::expected (C++23),
/// which is not yet available on this toolchain.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(StatusCode code) : storage_(code) {}      // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(status.code()) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] StatusCode code() const {
    return has_value() ? StatusCode::kOk : std::get<StatusCode>(storage_);
  }
  [[nodiscard]] Status status() const { return Status{code()}; }

  [[nodiscard]] T& value() & {
    check();
    return std::get<T>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    check();
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    check();
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<T>(storage_) : std::move(fallback);
  }

  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }

 private:
  void check() const {
    if (!has_value()) {
      throw std::runtime_error("Result accessed without value: " +
                               std::string(to_string(std::get<StatusCode>(storage_))));
    }
  }

  std::variant<T, StatusCode> storage_;
};

}  // namespace wirecap
