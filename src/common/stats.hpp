// Statistics collection for experiments: binned time series (the 10 ms
// bins of Figure 3), log-bucketed histograms, and running summaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace wirecap {

/// Counts events into fixed-width virtual-time bins.  Figure 3 bins
/// arriving packets into 10 ms intervals; queue_profiler uses this.
class BinnedSeries {
 public:
  explicit BinnedSeries(Nanos bin_width);

  /// Records `count` events at virtual time `t`.
  void record(Nanos t, std::uint64_t count = 1);

  [[nodiscard]] Nanos bin_width() const { return bin_width_; }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return bins_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Start time of bin i.
  [[nodiscard]] Nanos bin_start(std::size_t i) const {
    return Nanos{static_cast<std::int64_t>(i) * bin_width_.count()};
  }

  /// Largest bin value — the peak burst intensity.
  [[nodiscard]] std::uint64_t peak() const;

  /// Mean events per bin over [0, last recorded bin].
  [[nodiscard]] double mean() const;

 private:
  Nanos bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Power-of-two bucketed histogram for latency-like quantities.
class Log2Histogram {
 public:
  Log2Histogram();

  void record(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  /// Approximate quantile (q in [0,1]) assuming uniform density within a
  /// bucket.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<std::uint64_t> buckets_;  // bucket i holds values in [2^(i-1), 2^i)
  std::uint64_t count_ = 0;
};

/// Running mean / variance / extrema via Welford's algorithm.
class SummaryStats {
 public:
  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Formats `value` with thousands separators ("14,880,952").
[[nodiscard]] std::string with_thousands(std::uint64_t value);

/// Formats a fraction as a percentage with one decimal ("46.5%").
[[nodiscard]] std::string as_percent(double fraction);

}  // namespace wirecap
