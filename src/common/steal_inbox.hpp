// Per-queue steal inbox for non-blocking buddy offload.  Buddies that
// want to hand a chunk to this queue deposit it here with a CAS claim
// instead of taking the owner's capture-queue lock; the owner's app
// thread claims ready slots alongside its SPSC ring drain.
//
// The slot protocol is a three-state machine:
//   kEmpty --CAS(producer)--> kClaimed --store-release--> kReady
//   kReady --load-acquire(consumer)--> take value --> kEmpty
// Producers race only on the empty→claimed CAS; a producer that loses
// it simply tries the next slot, and a deposit that finds no empty slot
// reports why (another producer raced it vs. genuinely full) so the
// dispatcher can fall home and count the right telemetry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wirecap {

template <typename T, std::size_t N = 8>
class StealInbox {
  static_assert(N >= 1, "StealInbox needs at least one slot");

 public:
  enum class Deposit : std::uint8_t {
    kOk,         ///< deposited; owner will claim it
    kContended,  ///< lost a CAS race — loser falls home
    kFull,       ///< every slot occupied (owner not draining fast enough)
  };

  StealInbox() = default;
  StealInbox(const StealInbox&) = delete;
  StealInbox& operator=(const StealInbox&) = delete;

  [[nodiscard]] static constexpr std::size_t capacity() { return N; }

  /// Producer side (any buddy's capture thread).
  Deposit try_deposit(T value) {
    bool lost_race = false;
    for (auto& slot : slots_) {
      std::uint8_t expected = kEmpty;
      if (slot.state.compare_exchange_strong(expected, kClaimed,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
        slot.value = std::move(value);
        slot.state.store(kReady, std::memory_order_release);
        return Deposit::kOk;
      }
      // expected now holds the observed state.  kClaimed means another
      // producer is mid-deposit right now — that is contention, not
      // capacity; kReady just means the slot is occupied.
      if (expected == kClaimed) lost_race = true;
    }
    return lost_race ? Deposit::kContended : Deposit::kFull;
  }

  /// Consumer side (the owning queue's app/drain path).  Claims one
  /// ready slot; returns false when none is ready.
  bool try_claim(T& out) {
    for (auto& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) == kReady) {
        out = std::move(slot.value);
        slot.state.store(kEmpty, std::memory_order_release);
        return true;
      }
    }
    return false;
  }

  /// Ready-slot count; approximate under concurrency, exact quiesced.
  [[nodiscard]] std::size_t size_approx() const {
    std::size_t n = 0;
    for (const auto& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) == kReady) ++n;
    }
    return n;
  }

  /// Copies the ready slots without claiming them.  Census use only —
  /// callers must be quiesced with respect to producers.
  [[nodiscard]] std::vector<T> snapshot() const {
    std::vector<T> out;
    for (const auto& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) == kReady) {
        out.push_back(slot.value);
      }
    }
    return out;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kClaimed = 1;
  static constexpr std::uint8_t kReady = 2;

  // One slot per cache line: producers CAS distinct slots without
  // false sharing each other or the consumer's scans.
  struct alignas(64) Slot {
    std::atomic<std::uint8_t> state{kEmpty};
    T value{};
  };
  Slot slots_[N];
};

}  // namespace wirecap
