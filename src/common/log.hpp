// Minimal leveled logger.  Experiments run quiet by default; examples turn
// on kInfo to narrate what the engine is doing.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace wirecap {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Receives each formatted line ("[level] component: message", no
/// trailing newline) instead of stderr.
using LogSink = std::function<void(LogLevel, std::string_view line)>;

/// Installs `sink` as the log destination; a null sink restores stderr.
/// Tests capture warnings this way; long-running tools can tee to a file.
void set_log_sink(LogSink sink);

/// Emits one line, "[level] component: message".  The line is formatted
/// into a single buffer and written with one fwrite (or one sink call),
/// so concurrent loggers cannot interleave mid-line.
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style convenience: LogMessage(kInfo, "nic") << "ring " << i;
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace wirecap
