// Deterministic random number generation for workload synthesis.
//
// All experiment randomness flows from a single seeded Xoshiro256**
// generator so that every benchmark run reproduces the paper figures
// bit-for-bit.  Distribution helpers cover the shapes needed by the
// border-router traffic model: uniform, exponential (Poisson arrivals),
// bounded Pareto (heavy-tailed flow sizes) and Zipf (flow popularity).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace wirecap {

/// SplitMix64 — used to expand a single 64-bit seed into a full
/// Xoshiro256** state (the construction recommended by the xoshiro
/// authors).
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, and tiny.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed = 0x57697265434150ULL) {
    SplitMix64 sm{seed};
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponential with mean `mean` (> 0).
  double next_exponential(double mean);

  /// Bounded Pareto on [lo, hi] with shape alpha (> 0): the classic
  /// heavy-tailed flow-size distribution.
  double next_bounded_pareto(double alpha, double lo, double hi);

  /// Forks an independent generator (jump via reseeding from this
  /// stream); used to give each traffic source its own stream.
  Xoshiro256 fork() { return Xoshiro256{next()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s, n) sampler over {0, .., n-1} using precomputed CDF with binary
/// search — exact, O(log n) per sample.  Used for flow-popularity skew.
class ZipfSampler {
 public:
  ZipfSampler(double skew, std::uint32_t n);

  [[nodiscard]] std::uint32_t sample(Xoshiro256& rng) const;
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace wirecap
