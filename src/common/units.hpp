// Strongly-typed units used throughout the WireCAP reproduction.
//
// All simulation time is virtual and counted in integer nanoseconds
// (`Nanos`).  Rates are expressed in events per second as double-precision
// values with explicit conversion helpers, so call sites never multiply
// raw numbers of mismatched magnitude.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <limits>
#include <ratio>

namespace wirecap {

/// Virtual simulation time in integer nanoseconds since simulation start.
///
/// A thin wrapper (rather than std::chrono::nanoseconds) so that simulation
/// timestamps cannot be accidentally mixed with wall-clock durations.
class Nanos {
 public:
  constexpr Nanos() = default;
  constexpr explicit Nanos(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  [[nodiscard]] constexpr double micros() const {
    return static_cast<double>(ns_) * 1e-3;
  }

  [[nodiscard]] static constexpr Nanos from_seconds(double s) {
    return Nanos{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr Nanos from_millis(double ms) {
    return Nanos{static_cast<std::int64_t>(ms * 1e6)};
  }
  [[nodiscard]] static constexpr Nanos from_micros(double us) {
    return Nanos{static_cast<std::int64_t>(us * 1e3)};
  }
  [[nodiscard]] static constexpr Nanos zero() { return Nanos{0}; }
  [[nodiscard]] static constexpr Nanos max() {
    return Nanos{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const Nanos&) const = default;

  constexpr Nanos& operator+=(Nanos other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Nanos& operator-=(Nanos other) {
    ns_ -= other.ns_;
    return *this;
  }

  friend constexpr Nanos operator+(Nanos a, Nanos b) {
    return Nanos{a.ns_ + b.ns_};
  }
  friend constexpr Nanos operator-(Nanos a, Nanos b) {
    return Nanos{a.ns_ - b.ns_};
  }
  friend constexpr Nanos operator*(Nanos a, std::int64_t k) {
    return Nanos{a.ns_ * k};
  }
  friend constexpr Nanos operator*(std::int64_t k, Nanos a) { return a * k; }
  friend constexpr std::int64_t operator/(Nanos a, Nanos b) {
    return a.ns_ / b.ns_;
  }

 private:
  std::int64_t ns_ = 0;
};

/// A rate in events (packets, operations, bytes) per second.
class Rate {
 public:
  constexpr Rate() = default;
  constexpr explicit Rate(double per_second) : per_second_(per_second) {}

  [[nodiscard]] constexpr double per_second() const { return per_second_; }
  [[nodiscard]] constexpr bool is_zero() const { return per_second_ <= 0.0; }

  /// Time between consecutive events at this rate.
  [[nodiscard]] constexpr Nanos interval() const {
    return is_zero() ? Nanos::max() : Nanos::from_seconds(1.0 / per_second_);
  }

  /// Number of whole events that fit in `window` at this rate.
  [[nodiscard]] constexpr std::int64_t events_in(Nanos window) const {
    return static_cast<std::int64_t>(per_second_ * window.seconds());
  }

  [[nodiscard]] static constexpr Rate per_second_of(double v) {
    return Rate{v};
  }
  [[nodiscard]] static constexpr Rate mega_per_second(double v) {
    return Rate{v * 1e6};
  }
  [[nodiscard]] static constexpr Rate kilo_per_second(double v) {
    return Rate{v * 1e3};
  }

  constexpr auto operator<=>(const Rate&) const = default;

  friend constexpr Rate operator+(Rate a, Rate b) {
    return Rate{a.per_second_ + b.per_second_};
  }
  friend constexpr Rate operator*(Rate a, double k) {
    return Rate{a.per_second_ * k};
  }

 private:
  double per_second_ = 0.0;
};

/// Link speeds and frame geometry for Ethernet wire-rate computations.
namespace ethernet {

/// Per-frame wire overhead: preamble (7) + SFD (1) + inter-frame gap (12).
inline constexpr std::uint32_t kWireOverheadBytes = 20;
/// Frame check sequence appended to every frame.
inline constexpr std::uint32_t kFcsBytes = 4;
inline constexpr std::uint32_t kMinFrameBytes = 64;   // including FCS
inline constexpr std::uint32_t kMaxFrameBytes = 1518; // including FCS

/// Packets per second achievable on a link of `bits_per_second` with
/// frames of `frame_bytes` (frame size includes FCS, excludes
/// preamble/IFG).  For 10 GbE and 64-byte frames this yields the paper's
/// 14.88 Mp/s figure.
[[nodiscard]] constexpr Rate wire_rate(double bits_per_second,
                                       std::uint32_t frame_bytes) {
  const double bytes_on_wire =
      static_cast<double>(frame_bytes + kWireOverheadBytes);
  return Rate{bits_per_second / (8.0 * bytes_on_wire)};
}

inline constexpr double k10GbpsBits = 10e9;
inline constexpr double k40GbpsBits = 40e9;

}  // namespace ethernet

}  // namespace wirecap
