// Single-producer single-consumer ring for the lock-free chunk handoff
// fast path.  One producer (the driver dispatch running on the capture
// thread) publishes chunk descriptors; one consumer (the application
// thread) drains them — no mutex, no condvar, acquire/release only.
//
// Layout follows the classic Lamport ring with two refinements from
// production packet rings (netsniff-ng, DPDK rte_ring):
//   * free-running 64-bit head/tail counters masked by a power-of-two
//     capacity, so full vs empty needs no wasted slot and depth is a
//     plain subtraction;
//   * each side keeps a cached copy of the peer's counter on its own
//     cache line and only re-reads the shared atomic when the cached
//     value would block, cutting cross-core traffic to ~1 coherence
//     miss per wraparound instead of per operation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/handoff.hpp"

namespace wirecap {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (min 2).
  explicit SpscRing(std::size_t min_capacity) {
    if (min_capacity == 0) {
      throw std::invalid_argument{"SpscRing capacity must be > 0"};
    }
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side.  Never blocks; reports the depth observed right
  /// after publication (includes the pushed element), which is what
  /// high-water accounting must record — a later size() call can race
  /// the consumer and miss the peak this push created.
  PushOutcome try_push(T value) {
    if (closed_.load(std::memory_order_acquire)) {
      return {PushResult::kClosed, depth_after(tail_.load(std::memory_order_relaxed))};
    }
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) {
        return {PushResult::kFull, depth_after(tail)};
      }
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return {PushResult::kOk, depth_after(tail + 1)};
  }

  /// Consumer side.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Batched consumer read: one acquire load of the producer's tail
  /// covers every element moved, one release store retires them all.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = tail_cache_ - head;
    if (avail == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n =
        max < avail ? max : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(slots_[(head + i) & mask_]));
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Instantaneous depth sample.  Exact when either side is quiesced;
  /// otherwise a consistent snapshot of two atomics (never negative:
  /// tail is read after head, and only the producer advances tail).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  void close() { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  /// Reopens a drained ring (close/reopen fault plans reuse the ring).
  void reopen() { closed_.store(false, std::memory_order_release); }

  /// Copies the current [head, tail) contents.  Only meaningful when
  /// both sides are quiesced (census / close-time sweeps); the engine
  /// runs single-threaded in virtual time, so that always holds there.
  [[nodiscard]] std::vector<T> snapshot() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(tail - head));
    for (std::uint64_t i = head; i != tail; ++i) {
      out.push_back(slots_[i & mask_]);
    }
    return out;
  }

 private:
  [[nodiscard]] std::size_t depth_after(std::uint64_t tail) const {
    return static_cast<std::size_t>(tail -
                                    head_.load(std::memory_order_acquire));
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;

  // Producer-owned line: tail counter plus the cached consumer head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  // Consumer-owned line: head counter plus the cached producer tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
  // Rarely written; keep it off both hot lines.
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace wirecap
