// A bounded multi-producer/multi-consumer queue with blocking and
// non-blocking interfaces.
//
// Used where multiple threads share one endpoint: the chunk free-list of a
// ring buffer pool in the real-thread pipeline (recycled by any application
// thread, consumed by the driver), and the paradigm of §5e where several
// application threads read one receive queue's work-queue pair.  A
// mutex+condvar implementation is deliberately chosen over a lock-free one:
// these paths are not per-packet (they are per-*chunk*, i.e. amortized over
// M packets), and the blocking semantics match the paper's blocking capture
// operation.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/handoff.hpp"

namespace wirecap {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("MpmcQueue: capacity must be positive");
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Non-blocking push; returns false when full or closed.  Callers
  /// that must tell those apart — or need the depth the push produced —
  /// use push_result().
  bool try_push(T value) {
    return push_result(std::move(value)).ok();
  }

  /// Non-blocking push distinguishing "full" (backpressure, retry) from
  /// "closed" (permanent, fall home).  `depth` is the queue size right
  /// after the push, read under the same lock — the exact value
  /// high-water accounting needs, immune to a racing consumer popping
  /// before a separate size() call.
  PushOutcome push_result(T value) {
    PushOutcome outcome;
    {
      std::lock_guard lock(mutex_);
      if (closed_) return {PushResult::kClosed, items_.size()};
      if (items_.size() >= capacity_) return {PushResult::kFull, items_.size()};
      items_.push_back(std::move(value));
      outcome = {PushResult::kOk, items_.size()};
    }
    not_empty_.notify_one();
    return outcome;
  }

  /// Non-blocking pop; returns nullopt when empty.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking batched pop: moves up to `max` items into `out` under
  /// a single lock acquisition with one notify, instead of max lock
  /// round-trips.  Returns the number of items moved.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    {
      std::lock_guard lock(mutex_);
      while (n < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
      }
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Blocking pop; returns nullopt only once the queue is closed *and*
  /// drained.
  std::optional<T> pop() {
    std::optional<T> value;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Blocking pop with timeout; mirrors the paper's capture operation,
  /// which "will be blocked with a timeout".  Returns nullopt on timeout
  /// or closed-and-drained.
  std::optional<T> pop_for(std::chrono::nanoseconds timeout) {
    std::optional<T> value;
    {
      std::unique_lock lock(mutex_);
      if (!not_empty_.wait_for(lock, timeout,
                               [&] { return closed_ || !items_.empty(); })) {
        return std::nullopt;
      }
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Blocking push; returns false once closed.
  bool push(T value) {
    {
      std::unique_lock lock(mutex_);
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Marks the queue closed: producers fail, consumers drain then see
  /// nullopt.  Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Copy of the current contents, oldest first.  For introspection
  /// (conservation censuses, tests); the snapshot is stale the moment
  /// the lock drops, so use it only when producers/consumers are
  /// quiesced or approximate answers are acceptable.
  [[nodiscard]] std::deque<T> snapshot() const {
    std::lock_guard lock(mutex_);
    return items_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace wirecap
