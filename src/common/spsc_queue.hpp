// A lock-free bounded single-producer/single-consumer queue.
//
// This is the work-queue primitive of WireCAP's user-mode library: each
// receive queue owns a *work-queue pair* — a capture queue (producer: the
// capture thread; consumer: the application thread) and a recycle queue
// (producer: the application thread; consumer: the capture thread).  Both
// directions are strictly SPSC, which is why this classic Lamport queue
// with acquire/release fences is sufficient and fast.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wirecap {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : slots_(capacity + 1)  // one slot is kept empty to distinguish full/empty
  {
    if (capacity == 0) {
      throw std::invalid_argument("SpscQueue: capacity must be positive");
    }
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Usable capacity (number of elements the queue can hold).
  [[nodiscard]] std::size_t capacity() const { return slots_.size() - 1; }

  /// Approximate occupancy; exact when called from either endpoint thread
  /// with no concurrent operation in flight.  WireCAP's offloading policy
  /// reads this from the capture thread, where any staleness only delays
  /// an offload decision by one chunk.
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : slots_.size() - (head - tail);
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

  /// Occupancy as a fraction of capacity in [0, 1] — the quantity WireCAP
  /// compares against the offloading percentage threshold T.
  [[nodiscard]] double fill_fraction() const {
    return static_cast<double>(size_approx()) /
           static_cast<double>(capacity());
  }

  /// Producer side.  Returns false when the queue is full.
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = advance(tail);
    if (next == head_.load(std::memory_order_acquire)) return false;
    slots_[tail].value = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns nullopt when the queue is empty.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(slots_[head].value);
    head_.store(advance(head), std::memory_order_release);
    return value;
  }

  /// Consumer side: pops up to `max` elements into `out` (appended).
  /// Returns the number popped.  Batch draining keeps per-chunk overhead
  /// low on the recycle path.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      auto v = try_pop();
      if (!v) break;
      out.push_back(std::move(*v));
      ++n;
    }
    return n;
  }

 private:
  struct Slot {
    T value{};
  };

  [[nodiscard]] std::size_t advance(std::size_t i) const {
    return (i + 1) % slots_.size();
  }

  static constexpr std::size_t kCacheLine = 64;

  std::vector<Slot> slots_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace wirecap
