#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wirecap {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("next_below: bound must be positive");
  }
  // Unbiased rejection sampling (the OpenBSD arc4random_uniform scheme):
  // reject the low residue class so every value in [0, bound) is equally
  // likely.  threshold == (2^64 - bound) mod bound via unsigned wraparound.
  const std::uint64_t threshold = (0 - bound) % bound;
  std::uint64_t x = next();
  while (x < threshold) x = next();
  return x % bound;
}

double Xoshiro256::next_exponential(double mean) {
  if (mean <= 0.0) {
    throw std::invalid_argument("next_exponential: mean must be positive");
  }
  // 1 - U in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

double Xoshiro256::next_bounded_pareto(double alpha, double lo, double hi) {
  if (alpha <= 0.0 || lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument("next_bounded_pareto: need alpha>0, 0<lo<hi");
  }
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

ZipfSampler::ZipfSampler(double skew, std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::uint32_t ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::uint32_t>(it - cdf_.begin());
  return idx < cdf_.size() ? idx : static_cast<std::uint32_t>(cdf_.size() - 1);
}

}  // namespace wirecap
