// Shared vocabulary of the chunk-handoff layer: how a push can end,
// what it reports, and which handoff implementation an engine runs.
//
// `PushResult` exists because a bool cannot distinguish "the queue is
// full" (backpressure: park the chunk and retry) from "the queue is
// closed" (the consumer is gone: fall home / recycle immediately).
// Conflating the two made WirecapEngine::dispatch park chunks destined
// for a closed target in `pending` as if backpressure would clear.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace wirecap {

/// Outcome class of a non-blocking push onto a bounded queue.
enum class PushResult : std::uint8_t {
  kOk,      ///< accepted
  kFull,    ///< rejected: at capacity (backpressure — retry later)
  kClosed,  ///< rejected: closed (permanent — do not retry)
};

/// Result of a push together with the queue depth observed at the push
/// itself.  For mutex-protected queues `depth` is exact (it is read
/// under the same lock that committed the push); for lock-free rings it
/// is a true instantaneous sample taken immediately after publication,
/// and always includes the pushed element.  Recording high-water marks
/// from `depth` cannot miss the push that set them — unlike a separate
/// size() call racing concurrent consumers.
struct PushOutcome {
  PushResult result = PushResult::kOk;
  std::size_t depth = 0;

  [[nodiscard]] constexpr bool ok() const { return result == PushResult::kOk; }
};

/// Which chunk-handoff implementation a WireCAP engine runs between its
/// capture threads and application threads.
enum class HandoffMode : std::uint8_t {
  /// Mutex+condvar MpmcQueue per capture queue.  Required for the §5e
  /// shared-queue paradigm (several application threads reading one
  /// work-queue pair) and the blocking-capture baseline; buddy offload
  /// pushes straight into the target's queue.
  kMutex,
  /// Lock-free fast path: a cache-line-padded SpscRing between each
  /// queue's capture thread and its (single) application thread, plus a
  /// per-queue StealInbox through which buddies deposit offloaded
  /// chunks with a CAS claim instead of taking the target's lock.
  kLockFree,
};

[[nodiscard]] constexpr const char* to_string(HandoffMode mode) {
  return mode == HandoffMode::kMutex ? "mutex" : "lock-free";
}

/// How an overloaded capture thread picks the buddy to offload to.
/// The paper's design targets "an idle or less busy receive queue"
/// (least-busy); the alternatives exist for the ablation benchmarks.
/// Lives here (not in core) so the engines-layer config and the
/// per-tenant TenantSpec can carry it without linking core.
enum class OffloadPolicy : std::uint8_t {
  kLeastBusy,    // shortest buddy capture queue (the paper's policy)
  kRandomBuddy,  // uniform random buddy
  kRoundRobin,   // cycle through buddies
};

[[nodiscard]] constexpr const char* to_string(OffloadPolicy policy) {
  switch (policy) {
    case OffloadPolicy::kLeastBusy: return "least-busy";
    case OffloadPolicy::kRandomBuddy: return "random";
    case OffloadPolicy::kRoundRobin: return "round-robin";
  }
  return "least-busy";
}

// CLI-boundary parsers.  Engine configs carry the enums; only argv
// handling converts strings, and an unknown value fails fast with the
// allowed set spelled out.

[[nodiscard]] inline OffloadPolicy parse_offload_policy(
    std::string_view text) {
  if (text == "least-busy") return OffloadPolicy::kLeastBusy;
  if (text == "random") return OffloadPolicy::kRandomBuddy;
  if (text == "round-robin") return OffloadPolicy::kRoundRobin;
  throw std::invalid_argument("unknown offload policy \"" +
                              std::string(text) +
                              "\" (allowed: least-busy, random, round-robin)");
}

[[nodiscard]] inline HandoffMode parse_handoff_mode(std::string_view text) {
  if (text == "lock-free") return HandoffMode::kLockFree;
  if (text == "mutex") return HandoffMode::kMutex;
  throw std::invalid_argument("unknown handoff mode \"" + std::string(text) +
                              "\" (allowed: lock-free, mutex)");
}

}  // namespace wirecap
