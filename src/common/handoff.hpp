// Shared vocabulary of the chunk-handoff layer: how a push can end,
// what it reports, and which handoff implementation an engine runs.
//
// `PushResult` exists because a bool cannot distinguish "the queue is
// full" (backpressure: park the chunk and retry) from "the queue is
// closed" (the consumer is gone: fall home / recycle immediately).
// Conflating the two made WirecapEngine::dispatch park chunks destined
// for a closed target in `pending` as if backpressure would clear.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wirecap {

/// Outcome class of a non-blocking push onto a bounded queue.
enum class PushResult : std::uint8_t {
  kOk,      ///< accepted
  kFull,    ///< rejected: at capacity (backpressure — retry later)
  kClosed,  ///< rejected: closed (permanent — do not retry)
};

/// Result of a push together with the queue depth observed at the push
/// itself.  For mutex-protected queues `depth` is exact (it is read
/// under the same lock that committed the push); for lock-free rings it
/// is a true instantaneous sample taken immediately after publication,
/// and always includes the pushed element.  Recording high-water marks
/// from `depth` cannot miss the push that set them — unlike a separate
/// size() call racing concurrent consumers.
struct PushOutcome {
  PushResult result = PushResult::kOk;
  std::size_t depth = 0;

  [[nodiscard]] constexpr bool ok() const { return result == PushResult::kOk; }
};

/// Which chunk-handoff implementation a WireCAP engine runs between its
/// capture threads and application threads.
enum class HandoffMode : std::uint8_t {
  /// Mutex+condvar MpmcQueue per capture queue.  Required for the §5e
  /// shared-queue paradigm (several application threads reading one
  /// work-queue pair) and the blocking-capture baseline; buddy offload
  /// pushes straight into the target's queue.
  kMutex,
  /// Lock-free fast path: a cache-line-padded SpscRing between each
  /// queue's capture thread and its (single) application thread, plus a
  /// per-queue StealInbox through which buddies deposit offloaded
  /// chunks with a CAS claim instead of taking the target's lock.
  kLockFree,
};

[[nodiscard]] constexpr const char* to_string(HandoffMode mode) {
  return mode == HandoffMode::kMutex ? "mutex" : "lock-free";
}

}  // namespace wirecap
