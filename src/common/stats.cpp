#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace wirecap {

BinnedSeries::BinnedSeries(Nanos bin_width) : bin_width_(bin_width) {
  if (bin_width.count() <= 0) {
    throw std::invalid_argument("BinnedSeries: bin width must be positive");
  }
}

void BinnedSeries::record(Nanos t, std::uint64_t count) {
  if (t.count() < 0) {
    throw std::invalid_argument("BinnedSeries: negative time");
  }
  const auto bin = static_cast<std::size_t>(t.count() / bin_width_.count());
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
  bins_[bin] += count;
  total_ += count;
}

std::uint64_t BinnedSeries::peak() const {
  if (bins_.empty()) return 0;
  return *std::max_element(bins_.begin(), bins_.end());
}

double BinnedSeries::mean() const {
  if (bins_.empty()) return 0.0;
  return static_cast<double>(total_) / static_cast<double>(bins_.size());
}

Log2Histogram::Log2Histogram() : buckets_(65, 0) {}

void Log2Histogram::record(std::uint64_t value) {
  const std::size_t bucket = value == 0 ? 0 : std::bit_width(value);
  buckets_[bucket] += 1;
  ++count_;
}

double Log2Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::size_t last = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > 0) last = i;
  }
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      // Bucket 0 is degenerate — it holds only the value 0 — so there
      // is nothing to interpolate across.
      if (i == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      const double within =
          (target - cumulative) / static_cast<double>(buckets_[i]);
      return lo + within * (hi - lo);
    }
    cumulative = next;
  }
  // Reachable only when floating-point dust pushes `target` past the
  // total: answer with the upper bound of the last non-empty bucket
  // rather than an impossible 2^64.
  return last == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(last));
}

void SummaryStats::record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double SummaryStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t leading = digits.size() % 3;
  if (leading == 0) leading = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - leading) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string as_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace wirecap
