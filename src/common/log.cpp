#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace wirecap {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;
LogSink g_sink;  // guarded by g_io_mutex

[[nodiscard]] const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_io_mutex);
  g_sink = std::move(sink);
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  // Format outside the lock, emit in one call: lines from concurrent
  // loggers can interleave with each other, but never mid-line.
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line.push_back('[');
  line.append(level_name(level));
  line.append("] ");
  line.append(component);
  line.append(": ");
  line.append(message);
  line.push_back('\n');
  std::lock_guard lock(g_io_mutex);
  if (g_sink) {
    g_sink(level, std::string_view{line.data(), line.size() - 1});
    return;
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
}

LogMessage::~LogMessage() {
  if (level_ >= log_level()) log_line(level_, component_, stream_.str());
}

}  // namespace wirecap
