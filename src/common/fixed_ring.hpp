// A fixed-capacity single-threaded ring deque.
//
// This is the basic container behind NIC descriptor rings, capture queues
// and recycle queues in the simulation: bounded, allocation-free after
// construction, O(1) push/pop at both ends.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wirecap {

template <typename T>
class FixedRing {
 public:
  explicit FixedRing(std::size_t capacity)
      : slots_(capacity > 0
                   ? capacity
                   : throw std::invalid_argument(
                         "FixedRing: capacity must be positive")) {}

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }

  /// Appends at the tail.  Returns false (and leaves `value` unconsumed)
  /// when full.
  bool push_back(T value) {
    if (full()) return false;
    slots_[index(head_ + size_)] = std::move(value);
    ++size_;
    return true;
  }

  /// Prepends at the head.  Returns false when full.
  bool push_front(T value) {
    if (full()) return false;
    head_ = index(head_ + slots_.size() - 1);
    slots_[head_] = std::move(value);
    ++size_;
    return true;
  }

  /// Removes and returns the head element.  Precondition: !empty().
  T pop_front() {
    check_nonempty();
    T value = std::move(slots_[head_]);
    head_ = index(head_ + 1);
    --size_;
    return value;
  }

  /// Removes and returns the tail element.  Precondition: !empty().
  T pop_back() {
    check_nonempty();
    --size_;
    return std::move(slots_[index(head_ + size_)]);
  }

  [[nodiscard]] T& front() {
    check_nonempty();
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    check_nonempty();
    return slots_[head_];
  }
  [[nodiscard]] T& back() {
    check_nonempty();
    return slots_[index(head_ + size_ - 1)];
  }
  [[nodiscard]] const T& back() const {
    check_nonempty();
    return slots_[index(head_ + size_ - 1)];
  }

  /// Random access from the head: at(0) == front().
  [[nodiscard]] T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("FixedRing::at");
    return slots_[index(head_ + i)];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("FixedRing::at");
    return slots_[index(head_ + i)];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t logical) const {
    return logical % slots_.size();
  }
  void check_nonempty() const {
    if (empty()) throw std::out_of_range("FixedRing: empty");
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wirecap
