#include "pcapcompat/pcap_compat.hpp"

#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"

namespace wirecap::pcap {

PcapHandle::PcapHandle(sim::Scheduler& scheduler,
                       engines::CaptureEngine& engine,
                       nic::MultiQueueNic& nic, std::uint32_t queue,
                       sim::SimCore& app_core)
    : scheduler_(scheduler), engine_(engine), nic_(nic), queue_(queue) {
  engine_.open(queue, app_core);
}

PcapHandle::~PcapHandle() { engine_.close(queue_); }

bpf::Program PcapHandle::compile(const std::string& expression) {
  return bpf::compile_filter(expression);
}

void PcapHandle::set_filter(bpf::Program program) {
  const auto verified = bpf::verify(program);
  if (!verified.ok) {
    throw std::invalid_argument("set_filter: " + verified.error);
  }
  filter_ = std::move(program);
  has_filter_ = true;
}

bool PcapHandle::step(const Handler& handler, int& handled) {
  auto view = engine_.try_next(queue_);
  if (!view) return false;

  const bool matches =
      !has_filter_ || bpf::matches(filter_, view->bytes, view->wire_len);
  if (matches) {
    PacketHeader header;
    header.ts_ns = view->timestamp.count();
    header.caplen = static_cast<std::uint32_t>(view->bytes.size());
    header.len = view->wire_len;
    in_flight_ = &*view;
    injected_ = false;
    handler(header, view->bytes);
    const bool was_injected = injected_;
    in_flight_ = nullptr;
    ++matched_;
    ++handled;
    if (!was_injected) engine_.done(queue_, *view);
  } else {
    ++filtered_out_;
    engine_.done(queue_, *view);
  }
  return true;
}

int PcapHandle::dispatch(int count, const Handler& handler) {
  int handled = 0;
  while ((count <= 0 || handled < count) && !break_) {
    if (!step(handler, handled)) break;
  }
  return handled;
}

int PcapHandle::loop(int count, const Handler& handler) {
  int handled = 0;
  while ((count <= 0 || handled < count) && !break_) {
    if (!step(handler, handled)) {
      // Nothing available: advance the simulation (the "blocking wait").
      if (!scheduler_.step()) break;  // simulation exhausted
    }
  }
  return break_ ? -2 : handled;
}

int PcapHandle::inject(nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) {
  if (in_flight_ == nullptr) return -1;
  const auto bytes = static_cast<int>(in_flight_->bytes.size());
  if (!engine_.forward(queue_, *in_flight_, out_nic, tx_queue)) return -1;
  injected_ = true;
  return bytes;
}

Stats PcapHandle::stats() const {
  Stats stats;
  stats.ps_recv = matched_ + filtered_out_;
  const auto engine_stats = engine_.queue_stats(queue_);
  stats.ps_drop = engine_stats.delivery_dropped;
  stats.ps_ifdrop = nic_.rx_stats(queue_).dropped;
  return stats;
}

}  // namespace wirecap::pcap
