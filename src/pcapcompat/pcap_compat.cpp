#include "pcapcompat/pcap_compat.hpp"

#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"

namespace wirecap::pcap {

PcapHandle::PcapHandle(sim::Scheduler& scheduler,
                       engines::CaptureEngine& engine,
                       nic::MultiQueueNic& nic, std::uint32_t queue,
                       sim::SimCore& app_core)
    : scheduler_(scheduler), engine_(engine), nic_(nic), queue_(queue) {
  engine_.open(queue, app_core);
}

PcapHandle::~PcapHandle() {
  // Hand any in-progress batch home before the queue (and with it the
  // pool the views alias) is torn down.
  release_batch();
  engine_.close(queue_);
}

bpf::Program PcapHandle::compile(const std::string& expression) {
  return bpf::compile_filter(expression);
}

void PcapHandle::set_filter(bpf::Program program) {
  const auto verified = bpf::verify(program);
  if (!verified.ok) {
    throw std::invalid_argument("set_filter: " + verified.error);
  }
  // Verified once, decoded once; the hot path never re-validates.
  filter_.emplace(program);
  // Views already pulled were filtered under the previous program; the
  // new filter applies from the next batch on (kernel-attach semantics).
}

void PcapHandle::release_batch() {
  // An empty views vector does NOT mean nothing to release: a pushdown
  // stage may have compacted the whole batch away while its refs (the
  // chunk's release obligations) remain.  Gating on views alone leaked
  // the chunk — the satellite regression in test_pcap_compat.
  if (batch_.views.empty() && batch_.refs.empty()) return;
  // Injected views were subtracted from the refs at inject time, so
  // done_batch() settles exactly the releases still owed.
  engine_.done_batch(queue_, batch_);  // one recycle per batch
  batch_.clear();
  injected_in_batch_ = 0;
  cursor_ = 0;
}

bool PcapHandle::refill_batch() {
  release_batch();
  if (engine_.try_next_batch(queue_, kBatchPackets, batch_) == 0) return false;
  if (batch_hook_) {
    // Pipeline pushdown: stages run before the handle's filter and may
    // compact the batch in place (possibly to zero views — the caller's
    // read loop then refills again, releasing the refs on the way).
    batch_hook_(batch_);
  }
  if (filter_) {
    // One pre-decoded pass over the whole batch.
    static_cast<void>(filter_->run_batch(batch_, accepts_));
  } else {
    accepts_.assign(batch_.size(), kMatched);
  }
  cursor_ = 0;
  return true;
}

const engines::CaptureView* PcapHandle::advance_to_match() {
  for (;;) {
    if (cursor_ >= batch_.size()) {
      if (!refill_batch()) return nullptr;
    }
    while (cursor_ < batch_.size()) {
      if (accepts_[cursor_] != kFiltered) {
        return &batch_.views[cursor_];
      }
      ++filtered_out_;  // consumed by the "kernel" filter
      ++cursor_;
    }
  }
}

void PcapHandle::deliver(const engines::CaptureView& view,
                         const Handler& handler) {
  PacketHeader header;
  header.ts_ns = view.timestamp.count();
  header.caplen = static_cast<std::uint32_t>(view.bytes.size());
  header.len = view.wire_len;
  in_flight_ = &view;
  injected_ = false;
  handler(header, view.bytes);
  if (injected_) {
    accepts_[cursor_] = kInjected;
    ++injected_in_batch_;
    // forward() consumed this view's release; keep the batch's refs in
    // step so release_batch() does not release it again.
    batch_.note_released(view.handle);
  }
  in_flight_ = nullptr;
  ++matched_;
  ++cursor_;
}

int PcapHandle::dispatch(int count, const Handler& handler) {
  int handled = 0;
  while ((count <= 0 || handled < count) && !break_) {
    const engines::CaptureView* view = advance_to_match();
    if (view == nullptr) break;
    deliver(*view, handler);
    ++handled;
  }
  return handled;
}

int PcapHandle::loop(int count, const Handler& handler) {
  int handled = 0;
  while ((count <= 0 || handled < count) && !break_) {
    const engines::CaptureView* view = advance_to_match();
    if (view != nullptr) {
      deliver(*view, handler);
      ++handled;
      continue;
    }
    // Nothing available: advance the simulation (the "blocking wait").
    if (!scheduler_.step()) break;  // simulation exhausted
  }
  return break_ ? -2 : handled;
}

int PcapHandle::next_ex(PacketHeader& header,
                        std::span<const std::byte>& data) {
  const engines::CaptureView* view = advance_to_match();
  if (view == nullptr) return 0;
  header.ts_ns = view->timestamp.count();
  header.caplen = static_cast<std::uint32_t>(view->bytes.size());
  header.len = view->wire_len;
  data = view->bytes;
  ++matched_;
  ++cursor_;  // the view stays alive until the batch is recycled
  return 1;
}

int PcapHandle::inject(nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) {
  if (in_flight_ == nullptr) return -1;
  const auto bytes = static_cast<int>(in_flight_->bytes.size());
  if (!engine_.forward(queue_, *in_flight_, out_nic, tx_queue)) return -1;
  injected_ = true;
  return bytes;
}

Stats PcapHandle::stats() const {
  Stats stats;
  stats.ps_recv = matched_ + filtered_out_;
  const auto engine_stats = engine_.queue_stats(queue_);
  stats.ps_drop = engine_stats.delivery_dropped;
  stats.ps_ifdrop = nic_.rx_stats(queue_).dropped;
  return stats;
}

// --- deprecated raw-pointer shims ---

namespace {
Handler wrap(const LegacyHandler& handler) {
  return [&handler](const PacketHeader& header,
                    std::span<const std::byte> data) {
    handler(&header, data.data(), data.size());
  };
}
}  // namespace

int PcapHandle::dispatch(int count, const LegacyHandler& handler) {
  return dispatch(count, wrap(handler));
}

int PcapHandle::loop(int count, const LegacyHandler& handler) {
  return loop(count, wrap(handler));
}

}  // namespace wirecap::pcap
