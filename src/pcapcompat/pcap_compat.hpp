// Libpcap-compatible interface (§3.3): "The user-mode library ...
// provides a standard interface for low-level network access and allows
// existing network monitoring applications to use WireCAP without
// changes."
//
// The facade mirrors the libpcap call shapes — open / compile /
// setfilter / dispatch / loop / stats / inject / close — over any
// CaptureEngine (WireCAP or a baseline), with filters compiled by the
// built-in BPF compiler and executed by the cBPF VM exactly as a kernel
// socket filter would be.
//
// dispatch() is non-blocking (processes what is available); loop() runs
// until `count` packets have been handled or breakloop() is called,
// driving the simulation scheduler while it waits — the moral
// equivalent of a blocking read.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "bpf/insn.hpp"
#include "engines/engine.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::pcap {

/// Mirrors struct pcap_pkthdr.
struct PacketHeader {
  std::int64_t ts_ns = 0;     // capture timestamp
  std::uint32_t caplen = 0;   // bytes available
  std::uint32_t len = 0;      // original wire length
};

/// Mirrors struct pcap_stat.
struct Stats {
  std::uint64_t ps_recv = 0;    // packets received (delivered + filtered)
  std::uint64_t ps_drop = 0;    // dropped for lack of buffer (delivery)
  std::uint64_t ps_ifdrop = 0;  // dropped by the interface (capture)
};

using Handler =
    std::function<void(const PacketHeader&, std::span<const std::byte>)>;

class PcapHandle {
 public:
  /// Opens `queue` of the engine for "live" capture.  `app_core` is the
  /// simulated core the reading application runs on.
  PcapHandle(sim::Scheduler& scheduler, engines::CaptureEngine& engine,
             nic::MultiQueueNic& nic, std::uint32_t queue,
             sim::SimCore& app_core);
  ~PcapHandle();

  PcapHandle(const PcapHandle&) = delete;
  PcapHandle& operator=(const PcapHandle&) = delete;

  /// pcap_compile: builds a BPF program from a filter expression.
  /// Throws bpf::ParseError / std::invalid_argument on a bad filter.
  [[nodiscard]] static bpf::Program compile(const std::string& expression);

  /// pcap_setfilter: only packets matching `program` reach the handler;
  /// the rest are consumed and counted, as with a kernel filter.
  void set_filter(bpf::Program program);

  /// pcap_dispatch: processes up to `count` available packets (all
  /// available if count <= 0) without blocking.  Returns the number
  /// passed to the handler.
  int dispatch(int count, const Handler& handler);

  /// pcap_loop: handles packets until `count` have been delivered
  /// (forever if count <= 0) or breakloop() is called, advancing the
  /// simulation while idle.  Returns packets handled, or -2 if broken.
  int loop(int count, const Handler& handler);

  /// pcap_breakloop.
  void breakloop() { break_ = true; }

  /// pcap_inject / pcap_sendpacket: transmits the most recently
  /// delivered packet (zero-copy forward) out `tx_queue` of `out_nic`.
  /// Must be called from inside the handler.  Returns bytes sent or -1.
  int inject(nic::MultiQueueNic& out_nic, std::uint32_t tx_queue);

  /// pcap_stats.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::uint32_t queue() const { return queue_; }

 private:
  bool step(const Handler& handler, int& handled);

  sim::Scheduler& scheduler_;
  engines::CaptureEngine& engine_;
  nic::MultiQueueNic& nic_;
  std::uint32_t queue_;
  bpf::Program filter_;
  bool has_filter_ = false;
  bool break_ = false;
  std::uint64_t matched_ = 0;
  std::uint64_t filtered_out_ = 0;
  // Set while inside the handler so inject() can forward the packet.
  const engines::CaptureView* in_flight_ = nullptr;
  bool injected_ = false;
};

}  // namespace wirecap::pcap
