// Libpcap-compatible interface (§3.3): "The user-mode library ...
// provides a standard interface for low-level network access and allows
// existing network monitoring applications to use WireCAP without
// changes."
//
// The facade mirrors the libpcap call shapes — open / compile /
// setfilter / dispatch / loop / next_ex / stats / inject / close — over
// any CaptureEngine (WireCAP or a baseline), with filters compiled by
// the built-in BPF compiler and executed exactly as a kernel socket
// filter would be.
//
// Internally the handle is batch-granular: it pulls whole chunk batches
// via CaptureEngine::try_next_batch(), filters each batch in one
// bpf::Predecoded::run_batch() pass, and recycles with a single
// done_batch() — per-packet calls never cross the engine boundary, even
// when the caller consumes one packet at a time through next_ex().
// Delivery semantics are unchanged from the per-packet implementation:
// dispatch(count) stops after exactly `count` matched packets (a
// partially consumed batch is resumed by the next call), and stats()
// counts a packet only once the read position has passed it.
//
// dispatch() is non-blocking (processes what is available); loop() runs
// until `count` packets have been handled or breakloop() is called,
// driving the simulation scheduler while it waits — the moral
// equivalent of a blocking read.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bpf/insn.hpp"
#include "bpf/predecode.hpp"
#include "engines/engine.hpp"
#include "sim/scheduler.hpp"

namespace wirecap::pcap {

/// Mirrors struct pcap_pkthdr.
struct PacketHeader {
  std::int64_t ts_ns = 0;     // capture timestamp
  std::uint32_t caplen = 0;   // bytes available
  std::uint32_t len = 0;      // original wire length
};

/// Mirrors struct pcap_stat.
struct Stats {
  std::uint64_t ps_recv = 0;    // packets received (delivered + filtered)
  std::uint64_t ps_drop = 0;    // dropped for lack of buffer (delivery)
  std::uint64_t ps_ifdrop = 0;  // dropped by the interface (capture)
};

/// The one canonical handler shape: header by reference, data as a span.
using Handler =
    std::function<void(const PacketHeader&, std::span<const std::byte>)>;

/// The pre-unification handler shape (raw header pointer + separate data
/// pointer/length, as in pcap_handler).  Deprecated: every caller ends
/// up re-wrapping the raw pointers; use Handler instead.
using LegacyHandler =
    std::function<void(const PacketHeader*, const std::byte*, std::size_t)>;

class PcapHandle {
 public:
  /// Number of packets pulled from the engine per try_next_batch call.
  /// Matches the default WireCAP chunk size M, so on WireCAP one batch
  /// is one chunk (metadata-only, one recycle).
  static constexpr std::size_t kBatchPackets = 256;

  /// Opens `queue` of the engine for "live" capture.  `app_core` is the
  /// simulated core the reading application runs on.
  PcapHandle(sim::Scheduler& scheduler, engines::CaptureEngine& engine,
             nic::MultiQueueNic& nic, std::uint32_t queue,
             sim::SimCore& app_core);
  ~PcapHandle();

  PcapHandle(const PcapHandle&) = delete;
  PcapHandle& operator=(const PcapHandle&) = delete;

  /// pcap_compile: builds a BPF program from a filter expression.
  /// Throws bpf::ParseError / std::invalid_argument on a bad filter.
  [[nodiscard]] static bpf::Program compile(const std::string& expression);

  /// pcap_setfilter: only packets matching `program` reach the handler;
  /// the rest are consumed and counted, as with a kernel filter.  The
  /// program is verified and pre-decoded once, here — the dispatch path
  /// runs the bpf::Predecoded form.
  void set_filter(bpf::Program program);

  /// pcap_dispatch: processes up to `count` available packets (all
  /// available if count <= 0) without blocking.  Returns the number
  /// passed to the handler.
  int dispatch(int count, const Handler& handler);

  /// pcap_loop: handles packets until `count` have been delivered
  /// (forever if count <= 0) or breakloop() is called, advancing the
  /// simulation while idle.  Returns packets handled, or -2 if broken.
  int loop(int count, const Handler& handler);

  [[deprecated("use the Handler overload: (const PacketHeader&, "
               "std::span<const std::byte>)")]]
  int dispatch(int count, const LegacyHandler& handler);

  [[deprecated("use the Handler overload: (const PacketHeader&, "
               "std::span<const std::byte>)")]]
  int loop(int count, const LegacyHandler& handler);

  /// pcap_next_ex: yields the next matching packet without a callback.
  /// Returns 1 and fills `header`/`data` when a packet is available, 0
  /// when nothing is pending (non-blocking, like a read timeout).  The
  /// data span stays valid until the next call into the handle — batch
  /// recycling is deferred, exactly the libpcap validity contract.
  int next_ex(PacketHeader& header, std::span<const std::byte>& data);

  /// pcap_breakloop.
  void breakloop() { break_ = true; }

  /// pcap_inject / pcap_sendpacket: transmits the most recently
  /// delivered packet (zero-copy forward) out `tx_queue` of `out_nic`.
  /// Must be called from inside the handler.  Returns bytes sent or -1.
  int inject(nic::MultiQueueNic& out_nic, std::uint32_t tx_queue);

  /// pcap_stats.
  [[nodiscard]] Stats stats() const;

  /// Attaches an in-capture processing hook run over every freshly
  /// pulled batch *before* the handle's own filter pass — the pipeline
  /// pushdown seam (bind a pipeline::Pipeline's run() here to truncate,
  /// sample, or pre-drop packets ahead of pcap delivery).  The hook may
  /// compact `batch.views` in place, even down to zero packets:
  /// releases follow `batch.refs`, so dropped views still recycle.
  /// Null clears.
  void set_batch_hook(std::function<void(engines::PacketBatch&)> hook) {
    batch_hook_ = std::move(hook);
  }

  [[nodiscard]] std::uint32_t queue() const { return queue_; }

 private:
  // Per-view disposition inside the current batch.
  enum : std::uint8_t { kFiltered = 0, kMatched = 1, kInjected = 2 };

  /// Releases the current batch back to the engine: one done_batch
  /// settling the batch's refs (views the handler forwarded were
  /// subtracted at inject time).  Tolerates a batch whose views were
  /// compacted away entirely — the refs still recycle the chunk.
  void release_batch();
  /// release_batch(), then pulls + filters the next batch.  Returns
  /// false when the engine has nothing pending.
  bool refill_batch();
  /// Skips (and counts) filtered-out views up to the next match,
  /// refilling across batch boundaries; returns nullptr when drained.
  /// Leaves cursor_ on the returned view.
  const engines::CaptureView* advance_to_match();
  void deliver(const engines::CaptureView& view, const Handler& handler);

  sim::Scheduler& scheduler_;
  engines::CaptureEngine& engine_;
  nic::MultiQueueNic& nic_;
  std::uint32_t queue_;
  std::optional<bpf::Predecoded> filter_;
  std::function<void(engines::PacketBatch&)> batch_hook_;
  bool break_ = false;
  std::uint64_t matched_ = 0;
  std::uint64_t filtered_out_ = 0;

  engines::PacketBatch batch_;          // current batch (may be mid-read)
  std::vector<std::uint8_t> accepts_;   // per-view disposition
  std::size_t cursor_ = 0;              // next unprocessed view index
  std::size_t injected_in_batch_ = 0;

  // Set while inside the handler so inject() can forward the packet.
  const engines::CaptureView* in_flight_ = nullptr;
  bool injected_ = false;
};

}  // namespace wirecap::pcap
