// The WireCAP capture engine (§3) — the paper's primary contribution.
//
// Architecture (Figure 6): a kernel-mode driver per receive queue
// (driver/wirecap_driver.hpp) implementing the ring-buffer-pool
// mechanism, plus this user-mode engine which runs, per queue:
//
//   * a *capture thread* on its own core, executing the low-level
//     capture and recycle ioctls and the offloading policy;
//   * a *work-queue pair*: the capture queue carries captured-chunk
//     metadata to the application; the recycle queue carries used-chunk
//     metadata back;
//   * a *buddy list*: receive queues of one application form a buddy
//     group; when this queue's capture queue exceeds the offloading
//     threshold T, newly captured chunks are placed on the least busy
//     buddy's capture queue instead (advanced mode, Figure 7b).
//
// Basic mode (no threshold) handles each queue independently: lossless
// for short-term bursts up to ~R*M packets, but helpless against
// long-term overload.  Advanced mode adds the buddy-group offloading
// that Figure 11 shows recovering that case.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/handoff.hpp"
#include "common/mpmc_queue.hpp"
#include "common/spsc_ring.hpp"
#include "common/steal_inbox.hpp"
#include "driver/wirecap_driver.hpp"
#include "engines/engine.hpp"
#include "sim/costs.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/latency.hpp"

namespace wirecap::core {

/// The offload-target policy now lives in common/handoff.hpp (the
/// engines-layer config and TenantSpec carry it without linking core);
/// the alias keeps core::OffloadPolicy spelling working.
using OffloadPolicy = wirecap::OffloadPolicy;

struct WirecapConfig {
  /// M — cells per chunk == descriptors per segment.
  std::uint32_t cells_per_chunk = 256;
  /// R — chunks per ring buffer pool.
  std::uint32_t chunk_count = 100;
  /// T — offloading percentage threshold in (0, 1]; nullopt runs the
  /// engine in basic mode (no offloading).
  std::optional<double> offload_threshold;
  std::uint32_t cell_size = 2048;
  /// Chunks moved per capture ioctl invocation.
  std::size_t max_chunks_per_capture = 16;
  /// Offload target selection (ablation; default is the paper's).
  OffloadPolicy offload_policy = OffloadPolicy::kLeastBusy;
  /// Capture-queue handoff implementation.  kLockFree (default) pairs a
  /// per-queue SpscRing (driver dispatch → the one bound app thread)
  /// with a StealInbox for buddy offloads, so dispatch never takes a
  /// lock.  kMutex keeps the MpmcQueue work-queue pair — required for
  /// the §5e shared-queue paradigm (several app threads on one queue)
  /// and the blocking-capture baseline.  The pool free-list (recycle
  /// queue) stays an MpmcQueue in both modes: any app thread recycles.
  HandoffMode handoff = HandoffMode::kLockFree;
  /// NUMA node the NIC's DMA engine writes into (two-socket boxes).
  std::uint32_t nic_numa_node = 0;
  /// Per-queue NUMA placement of each queue's capture thread and ring
  /// buffer pool; empty places every queue on nic_numa_node.  A queue
  /// on a different node than the NIC pays numa_remote_capture_cost per
  /// captured chunk; an offload whose target sits on a different node
  /// than the dispatcher pays numa_remote_handoff_cost.  A
  /// TenantSpec::numa_node overrides its member queues' entries.
  std::vector<std::uint32_t> queue_numa_node;
};

struct WirecapQueueExtraStats {
  std::uint64_t capture_queue_high_water = 0;
  /// Peak depth of `pending` — chunks captured but parked because no
  /// capture queue had room (the Type-II overflow signal of §3.3); also
  /// sampled periodically by the telemetry sampler.
  std::uint64_t pending_high_water = 0;
  std::uint64_t polls = 0;
  /// Lock-free offload handoff outcomes (engine.<q>.handoff.*).
  /// A buddy's deposit into this queue's steal inbox succeeded:
  std::uint64_t handoff_steals = 0;
  /// ... or lost a CAS race mid-deposit (counted on the dispatching
  /// queue; the loser falls home rather than retrying):
  std::uint64_t handoff_contended = 0;
  /// ... or could not place remotely at all (inbox full, target queue
  /// full or closed) and the chunk fell back to the home queue:
  std::uint64_t handoff_fallbacks = 0;
  /// Offload handoffs whose target queue sits on a different NUMA node
  /// than the dispatching queue (each paid numa_remote_handoff_cost).
  std::uint64_t numa_remote_handoffs = 0;
};

class WirecapEngine final : public engines::CaptureEngine {
 public:
  /// The engine creates one dedicated capture core per opened queue
  /// (the paper: "the system can dedicate one or several cores to run
  /// all capture threads").
  WirecapEngine(sim::Scheduler& scheduler, nic::MultiQueueNic& nic,
                WirecapConfig config, sim::CostModel costs = {});

  [[nodiscard]] std::string_view name() const override {
    return config_.offload_threshold ? "WireCAP-A" : "WireCAP-B";
  }
  [[nodiscard]] const WirecapConfig& config() const { return config_; }

  /// Registers (or upserts) a tenant: wires its queues into one buddy
  /// group (each member's buddy list becomes the group minus itself —
  /// offloading never crosses tenants), applies the spec's quota and
  /// per-tenant policy/threshold/NUMA overrides to the member queues,
  /// and releases queues the spec claims from any previous owner.
  /// Member queues must already be open (std::logic_error otherwise —
  /// the old set_buddy_group contract).
  engines::TenantId register_tenant(const engines::TenantSpec& spec) override;

  /// Deprecated single-application shim: forwards to register_tenant()
  /// with a spec named after the group's lowest queue id, no quota and
  /// no overrides — behaviorally identical (byte-identical dispatch) to
  /// the pre-tenant API.  Distinct groups registered through repeated
  /// calls coexist as distinct tenants.  Prefer register_tenant().
  void set_buddy_group(const std::vector<std::uint32_t>& queues);

  /// Quota-side account of `tenant` (charged captured chunks, quota,
  /// capture polls skipped at quota).
  [[nodiscard]] const engines::TenantAccount& tenant_account(
      engines::TenantId tenant) const;

  // --- CaptureEngine interface ---
  void open(std::uint32_t queue, sim::SimCore& app_core) override;
  /// Closes `queue` and invalidates every chunk its pool owns: the
  /// work-queue pair and `pending` are drained back to their owning
  /// pools, chunks this queue offloaded to buddies are pulled off their
  /// capture queues and recycled, and the queue's epoch is bumped so a
  /// late done()/TX completion on a chunk captured before the close is
  /// dropped instead of recycling stale metadata into a future pool.
  /// CaptureViews obtained before close() must not be dereferenced
  /// afterwards (their cells belong to the torn-down pool).
  void close(std::uint32_t queue) override;
  std::optional<engines::CaptureView> try_next(std::uint32_t queue) override;
  void done(std::uint32_t queue, const engines::CaptureView& view) override;
  /// Chunk-native handoff: pops one ChunkMeta off the capture queue and
  /// serves views of all its cells without copying — the spool consumes
  /// whole chunks exactly as the capture ioctl produced them.  If the
  /// application left a chunk partially read via try_next(), its
  /// remaining packets form the returned chunk (so the two read APIs
  /// compose).  `max_packets` is ignored: the chunk size is M.
  std::optional<engines::ChunkCaptureView> try_next_chunk(
      std::uint32_t queue, std::size_t max_packets = 64) override;
  /// Batch-native handoff: serves up to `max_packets` views of the
  /// queue's current chunk metadata-only (chunk == batch when
  /// `max_packets` >= M) and bumps `delivered` once per batch.  A batch
  /// never spans chunks, so it carries one BatchRef and done_batch() is
  /// one refcount decrement.
  std::size_t try_next_batch(std::uint32_t queue, std::size_t max_packets,
                             engines::PacketBatch& batch) override;
  /// Settles the batch's refs with one deref_n each; hand-built batches
  /// without refs fall back to one deref per run of same-chunk views.
  void done_batch(std::uint32_t queue,
                  const engines::PacketBatch& batch) override;
  [[nodiscard]] bool supports_batch_shares() const override { return true; }
  /// Fan-out support: raises each chunk's outstanding refcount by
  /// `extra` releases per batch packet and mirrors the grant into the
  /// pool's kernel-side share count (recycle refuses a chunk whose
  /// shares have not all been released — defense in depth against an
  /// engine bug releasing a fanned-out chunk early).
  void add_batch_shares(std::uint32_t queue, const engines::PacketBatch& batch,
                        std::uint32_t extra) override;
  bool forward(std::uint32_t queue, const engines::CaptureView& view,
               nic::MultiQueueNic& out_nic, std::uint32_t tx_queue) override;
  void set_data_callback(std::uint32_t queue,
                         std::function<void()> fn) override;
  [[nodiscard]] engines::EngineQueueStats queue_stats(
      std::uint32_t queue) const override;

  /// Base metrics plus, per open queue: capture/pending queue depths and
  /// high waters, pool free-chunk gauge, the full driver stats, and the
  /// capture core's utilization.  Also hands the tracer to the drivers
  /// and registers the depth-sampling probe.
  void bind_telemetry(telemetry::Telemetry& telemetry,
                      const std::string& prefix,
                      std::uint32_t num_queues) override;

  /// Telemetry-sampler probe: folds the current capture-queue and
  /// pending depths of every open queue into the high-water marks.
  void sample_depths(Nanos now);

  /// Registers a probe reporting `queue`'s capture-to-disk spool backlog
  /// (chunks accepted by the spool shard but not yet written out).
  /// dispatch() adds it to the capture-queue depth when computing the
  /// fill level compared against T and when ranking buddies, so a queue
  /// whose disk shard falls behind sheds chunks to buddies before its
  /// capture queue alone would trip the threshold.  Null clears; the
  /// probe must stay valid until cleared or the engine is destroyed.
  void set_spool_backlog_probe(std::uint32_t queue,
                               std::function<std::size_t()> probe);

  // --- introspection ---
  [[nodiscard]] const driver::WirecapDriverStats& driver_stats(
      std::uint32_t queue) const;
  [[nodiscard]] const WirecapQueueExtraStats& extra_stats(
      std::uint32_t queue) const;
  [[nodiscard]] const driver::RingBufferPool& pool(std::uint32_t queue) const;

  /// Utilization of the queue's dedicated capture-thread core in [0,1].
  [[nodiscard]] double capture_core_utilization(std::uint32_t queue) const;

  /// Total pool memory across opened queues (the Fig. 14 memory-pressure
  /// input).
  [[nodiscard]] std::uint64_t total_pool_bytes() const;

  /// Registers an observer handed to every queue's RingBufferPool —
  /// pools already open get it immediately, pools created by later
  /// open() calls get it at creation.  Used by the lifecycle auditor
  /// (src/testing); null clears.
  void set_pool_observer(driver::PoolObserver* observer);

  /// Where every captured chunk of `ring`'s pool currently lives inside
  /// the engine.  The locations are disjoint, so for a quiesced engine
  /// (no capture poll mid-flight):
  ///   pool(ring).state_counts().captured == census.total()
  /// — the conservation law the lifecycle auditor asserts.
  struct CapturedCensus {
    std::uint64_t in_capture_queues = 0;  ///< dispatched, not yet dequeued
    std::uint64_t in_pending = 0;         ///< parked, awaiting re-dispatch
    std::uint64_t in_recycle_queue = 0;   ///< released, awaiting recycle
    std::uint64_t outstanding = 0;        ///< held by applications / TX
    [[nodiscard]] std::uint64_t total() const {
      return in_capture_queues + in_pending + in_recycle_queue + outstanding;
    }
  };
  [[nodiscard]] CapturedCensus captured_census(std::uint32_t ring) const;

  /// Per-tenant conservation inputs, summed over the tenant's *open*
  /// member queues.  For a quiesced engine all four agree:
  ///   account_charged == queue_charged == pool_captured == engine_census
  /// — the tenant extension of the conservation law.  account_charged
  /// is the quota budget (what capture throttles on); queue_charged the
  /// per-queue engine-side tally; pool_captured the pools' ground
  /// truth; engine_census the sum of captured_census() totals.
  struct TenantCensus {
    std::uint64_t account_charged = 0;
    std::uint64_t queue_charged = 0;
    std::uint64_t pool_captured = 0;
    std::uint64_t engine_census = 0;
  };
  [[nodiscard]] TenantCensus tenant_census(engines::TenantId tenant) const;

 private:
  struct CurrentChunk {
    driver::ChunkMeta meta;
    std::uint32_t cursor = 0;  // next cell within [0, pkt_count)
  };

  struct Outstanding {
    driver::ChunkMeta meta;
    std::uint32_t remaining = 0;  // undelivered done()/TX completions
    /// Owning queue's epoch when the chunk was dequeued; a mismatch at
    /// final release means the queue closed in between and the metadata
    /// must be dropped, not recycled.
    std::uint64_t epoch = 0;
    /// Fan-out shares granted on this chunk (add_batch_shares); the
    /// pool's kernel-side share count is cleared by this amount when
    /// the last reference goes, immediately before the recycle.
    std::uint32_t shares = 0;
  };

  struct QueueState {
    bool open = false;
    /// Bumped by close(); distinguishes chunks of the current pool from
    /// chunks of pools torn down by earlier close() calls.
    std::uint64_t epoch = 0;
    std::unique_ptr<driver::WirecapQueueDriver> driver;
    std::unique_ptr<sim::SimCore> capture_core;
    /// Mutex mode only: the MPMC capture queue (null in lock-free mode).
    std::unique_ptr<MpmcQueue<driver::ChunkMeta>> capture_queue;
    /// Lock-free mode only: the SPSC fast path (home dispatch → app
    /// thread) and the inbox buddies deposit offloaded chunks into.
    std::unique_ptr<SpscRing<driver::ChunkMeta>> capture_ring;
    std::unique_ptr<StealInbox<driver::ChunkMeta>> steal_inbox;
    std::unique_ptr<MpmcQueue<driver::ChunkMeta>> recycle_queue;
    std::deque<driver::ChunkMeta> pending;  // couldn't be enqueued yet
    std::vector<std::uint32_t> buddies;
    /// Owning tenant (kNoTenant until a spec claims this queue).
    engines::TenantId tenant = engines::kNoTenant;
    /// Effective offload knobs: the engine config's values until a
    /// TenantSpec override replaces them.  dispatch() reads these, not
    /// config_, so tenants can differ per group.  Persist across
    /// close()/open() cycles.
    OffloadPolicy offload_policy = OffloadPolicy::kLeastBusy;
    std::optional<double> offload_threshold;
    /// NUMA node of this queue's capture thread + pool (config /
    /// TenantSpec override; pools created by open() are placed here).
    std::uint32_t numa_node = 0;
    /// Captured chunks of this ring's pool currently charged against
    /// the owning tenant's quota (== the pool's captured count while
    /// open).  close() credits the remainder back to the tenant.
    std::uint64_t charged = 0;
    /// Per-queue offload-policy state.  Engine-global state here skewed
    /// round-robin toward low indices with heterogeneous buddy lists and
    /// correlated the xorshift streams across queues; open() seeds the
    /// RNG from the queue id (never zero — xorshift fixes 0 forever).
    std::uint32_t offload_rr = 0;
    std::uint64_t offload_rng = 0x9E3779B97F4A7C15ULL;
    std::optional<CurrentChunk> current;
    std::function<void()> data_callback;
    /// Spool-shard backlog probe (see set_spool_backlog_probe).
    std::function<std::size_t()> spool_backlog;
    engines::EngineQueueStats stats;
    WirecapQueueExtraStats extra;
    /// One journey record per pool chunk, indexed by chunk_id and reset
    /// at capture — the latency layer's per-chunk scratchpad.  Sized at
    /// open(); only written while LatencyTracker::enabled().
    std::vector<telemetry::ChunkJourney> journeys;
  };

  // Outstanding-map keys and application handles carry the owning
  // queue's epoch (mod 256) alongside {ring, chunk}, so a handle minted
  // before a close() can never alias an entry for the same chunk id
  // captured after a reopen.
  [[nodiscard]] static constexpr std::uint64_t chunk_key(
      std::uint32_t ring_id, std::uint32_t chunk_id, std::uint64_t epoch) {
    return (static_cast<std::uint64_t>(ring_id) << 40) |
           ((epoch & 0xFF) << 32) | chunk_id;
  }
  [[nodiscard]] static constexpr std::uint64_t make_handle(
      std::uint32_t ring_id, std::uint64_t epoch, std::uint32_t chunk_id,
      std::uint32_t cell) {
    return (static_cast<std::uint64_t>(ring_id) << 56) |
           ((epoch & 0xFF) << 48) |
           (static_cast<std::uint64_t>(chunk_id) << 24) | cell;
  }
  [[nodiscard]] static constexpr std::uint32_t handle_ring(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 56);
  }
  [[nodiscard]] static constexpr std::uint64_t handle_epoch(std::uint64_t h) {
    return (h >> 48) & 0xFF;
  }
  [[nodiscard]] static constexpr std::uint32_t handle_chunk(std::uint64_t h) {
    return static_cast<std::uint32_t>((h >> 24) & 0xFFFFFF);
  }
  [[nodiscard]] static constexpr std::uint32_t handle_cell(std::uint64_t h) {
    return static_cast<std::uint32_t>(h & 0xFFFFFF);
  }
  [[nodiscard]] static constexpr std::uint64_t handle_key(std::uint64_t h) {
    return chunk_key(handle_ring(h), handle_chunk(h), handle_epoch(h));
  }

  void poll(std::uint32_t queue);
  /// Places a captured chunk on a capture queue per the offloading
  /// policy; on failure parks it in `pending`.  Returns the modeled
  /// handoff cost the capture thread paid (cheap atomics in lock-free
  /// mode, lock+notify in mutex mode) for poll() to accumulate.
  Nanos dispatch(std::uint32_t queue, const driver::ChunkMeta& meta);
  /// Pops the next chunk bound for `qs`'s application: the SPSC ring
  /// then the steal inbox in lock-free mode, the MPMC queue otherwise.
  std::optional<driver::ChunkMeta> pop_capture(QueueState& qs);
  /// Mode-aware capture-side depth (ring + inbox, or MPMC queue).
  [[nodiscard]] std::size_t capture_depth(const QueueState& qs) const;
  /// Mode-aware snapshot of every chunk queued toward `qs`'s
  /// application (census / quiesced introspection only).
  [[nodiscard]] std::vector<driver::ChunkMeta> capture_metas(
      const QueueState& qs) const;
  void release_ref(std::uint32_t queue, std::uint64_t handle,
                   std::uint32_t count) override;
  void deref(std::uint64_t key) { deref_n(key, 1); }
  /// Drops `count` references of the chunk behind `key` in one step —
  /// the done_batch() fast path.
  void deref_n(std::uint64_t key, std::uint32_t count);
  /// Forgets a queue's partially-read current chunk: releases the
  /// undelivered packets' share of its refcount (close-time teardown).
  void drop_current(QueueState& qs);
  /// Registers `queue`'s per-queue metrics (depths, pool, driver stats)
  /// and hands the tracer to its driver.  Reopen-safe: every binding
  /// resolves through QueueState at sample time.  No-op until
  /// bind_telemetry() has supplied the registry.
  void bind_queue_telemetry(std::uint32_t queue);
  /// Publishes `<prefix>.tenant.<id>.*` (charged, quota, quota_stalls,
  /// delivered, queues); same late-binding rules as queue telemetry.
  void bind_tenant_telemetry(engines::TenantId tenant);
  /// Rebuilds every queue's tenant membership, buddy list and override
  /// knobs from the base-class registry, then recomputes the accounts'
  /// charged sums — one idempotent pass that handles upserts and
  /// cross-tenant queue releases alike.
  void rebuild_tenant_wiring();
  /// Credits `count` recycled (or close-stranded) chunks of `ring`'s
  /// pool back to its queue tally and its tenant's budget.
  void credit_charged(std::uint32_t ring, std::uint64_t count);
  /// Capture headroom `queue`'s tenant quota leaves (SIZE_MAX when
  /// unlimited).
  [[nodiscard]] std::size_t quota_headroom(const QueueState& qs) const;

  // Journey stamping, one call per lifecycle transition.  Callers gate
  // on `latency_ && latency_->enabled()` so the disabled hot path pays
  // one predicted branch per site (the EventTracer pattern).
  void journey_capture(const driver::ChunkMeta& meta, bool rescued);
  void journey_enqueue(const driver::ChunkMeta& meta, bool stolen);
  void journey_dequeue(const driver::ChunkMeta& meta, std::uint32_t queue);
  void journey_release(const driver::ChunkMeta& meta);

  sim::Scheduler& scheduler_;
  nic::MultiQueueNic& nic_;
  WirecapConfig config_;
  sim::CostModel costs_;
  std::vector<QueueState> queues_;
  /// Quota accounts, indexed by TenantId (parallel to tenants()).
  std::vector<engines::TenantAccount> accounts_;
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;
  /// Scratch for poll()'s batched recycle drain (reused across polls).
  std::vector<driver::ChunkMeta> recycle_scratch_;
  driver::PoolObserver* pool_observer_ = nullptr;
  // Telemetry context retained so queues opened after bind_telemetry()
  // still publish their per-queue metrics.
  telemetry::Telemetry* telemetry_ = nullptr;
  std::string telemetry_prefix_;
  /// Set by bind_telemetry(); null keeps the engine at its unbound
  /// baseline (no journey branches taken).
  telemetry::LatencyTracker* latency_ = nullptr;
};

}  // namespace wirecap::core
