#include "core/wirecap_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace wirecap::core {

WirecapEngine::WirecapEngine(sim::Scheduler& scheduler,
                             nic::MultiQueueNic& nic, WirecapConfig config,
                             sim::CostModel costs)
    : scheduler_(scheduler), nic_(nic), config_(config), costs_(costs) {
  if (config_.offload_threshold &&
      (*config_.offload_threshold <= 0.0 || *config_.offload_threshold > 1.0)) {
    throw std::invalid_argument("WirecapEngine: T must be in (0, 1]");
  }
  queues_.resize(nic_.config().num_rx_queues);
  // Seed every queue's effective knobs from the engine-wide config;
  // TenantSpec registration overrides them per group.
  for (std::uint32_t q = 0; q < queues_.size(); ++q) {
    QueueState& qs = queues_[q];
    qs.offload_policy = config_.offload_policy;
    qs.offload_threshold = config_.offload_threshold;
    qs.numa_node = q < config_.queue_numa_node.size()
                       ? config_.queue_numa_node[q]
                       : config_.nic_numa_node;
  }
}

void WirecapEngine::open(std::uint32_t queue, sim::SimCore& /*app_core*/) {
  QueueState& qs = queues_.at(queue);
  if (qs.open) return;
  qs.open = true;

  driver::WirecapDriverConfig driver_config;
  driver_config.cells_per_chunk = config_.cells_per_chunk;
  driver_config.chunk_count = config_.chunk_count;
  driver_config.cell_size = config_.cell_size;
  driver_config.partial_chunk_timeout = costs_.partial_chunk_timeout;
  // Pool placement follows the queue's (possibly tenant-overridden)
  // NUMA node: the fresh pool is allocated where the capture thread
  // runs, so only NIC-to-pool DMA distance shows up as a penalty.
  driver_config.numa_node = qs.numa_node;
  qs.driver = std::make_unique<driver::WirecapQueueDriver>(nic_, queue,
                                                           driver_config);

  // A dedicated core for this queue's capture thread, distinct from any
  // application core id.
  qs.capture_core = std::make_unique<sim::SimCore>(
      scheduler_, 1000 + nic_.nic_id() * 64 + queue);

  // Anything still sitting in the previous incarnation's work queues
  // belongs to a still-open buddy's pool (close() drained our own
  // chunks).  Send it home before the queue objects are replaced, or
  // the chunks would be destroyed while their pools still count them
  // as captured.
  const auto recycle_stale = [this](const driver::ChunkMeta& meta) {
    if (queues_[meta.ring_id].open &&
        queues_[meta.ring_id].driver->recycle(meta).is_ok()) {
      credit_charged(meta.ring_id, 1);
    }
  };
  if (qs.capture_queue) {
    while (auto meta = qs.capture_queue->try_pop()) recycle_stale(*meta);
  }
  if (qs.capture_ring) {
    driver::ChunkMeta meta;
    while (qs.capture_ring->try_pop(meta)) recycle_stale(meta);
  }
  if (qs.steal_inbox) {
    driver::ChunkMeta meta;
    while (qs.steal_inbox->try_claim(meta)) recycle_stale(meta);
  }
  if (qs.recycle_queue) {
    while (auto meta = qs.recycle_queue->try_pop()) recycle_stale(*meta);
  }

  if (config_.handoff == HandoffMode::kLockFree) {
    // The SPSC ring carries only this queue's own chunks (buddies
    // deposit into the inbox instead), so R slots always suffice.
    qs.capture_ring =
        std::make_unique<SpscRing<driver::ChunkMeta>>(config_.chunk_count);
    qs.steal_inbox = std::make_unique<StealInbox<driver::ChunkMeta>>();
    qs.capture_queue.reset();
  } else {
    // MPMC capture queues may receive chunks from every buddy, so size
    // them for the whole NIC's chunk population.
    const std::size_t capacity =
        static_cast<std::size_t>(config_.chunk_count) *
        nic_.config().num_rx_queues;
    qs.capture_queue =
        std::make_unique<MpmcQueue<driver::ChunkMeta>>(capacity);
    qs.capture_ring.reset();
    qs.steal_inbox.reset();
  }
  qs.recycle_queue = std::make_unique<MpmcQueue<driver::ChunkMeta>>(
      config_.chunk_count);

  // Per-queue offload-policy state: distinct xorshift streams per queue
  // (SplitMix64-style spread of the queue id over the golden-ratio
  // seed; never zero, which xorshift would fix forever).
  qs.offload_rr = 0;
  qs.offload_rng = 0x9E3779B97F4A7C15ULL ^
                   (0xBF58476D1CE4E5B9ULL * (static_cast<std::uint64_t>(queue) + 1));

  if (pool_observer_) qs.driver->pool().set_observer(pool_observer_);
  // Fresh journey scratchpad for the fresh pool (stale stamps from a
  // previous incarnation must not leak into the new epoch's journeys).
  qs.journeys.assign(config_.chunk_count, telemetry::ChunkJourney{});
  qs.driver->open();
  // Late-opened queues publish like queues open at bind time
  // (bind_queue_telemetry is a no-op until bind_telemetry() runs).
  bind_queue_telemetry(queue);
  poll(queue);
}

void WirecapEngine::close(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  if (!qs.open) return;
  qs.open = false;
  qs.data_callback = nullptr;

  // Drain the work-queue pair and `pending` back to the owning pools
  // while the old pool is still alive.  The recycle queue and `pending`
  // only ever hold this ring's chunks; the capture queue may also hold
  // chunks buddies offloaded in, which go home to *their* pools.
  const auto recycle_to_owner = [this](const driver::ChunkMeta& meta) {
    const Status status = queues_[meta.ring_id].driver->recycle(meta);
    if (!status.is_ok()) {
      throw std::logic_error("WirecapEngine: close-drain recycle failed");
    }
    credit_charged(meta.ring_id, 1);
  };
  if (qs.capture_queue) {
    while (auto meta = qs.capture_queue->try_pop()) recycle_to_owner(*meta);
  }
  if (qs.capture_ring) {
    driver::ChunkMeta meta;
    while (qs.capture_ring->try_pop(meta)) recycle_to_owner(meta);
  }
  if (qs.steal_inbox) {
    // Buddies' deposits we never claimed go home to their pools.
    driver::ChunkMeta meta;
    while (qs.steal_inbox->try_claim(meta)) recycle_to_owner(meta);
  }
  for (const driver::ChunkMeta& meta : qs.pending) recycle_to_owner(meta);
  qs.pending.clear();
  drop_current(qs);

  // Chunks this ring offloaded to buddies that are still queued (or
  // being read) over there reference the pool being torn down: pull
  // them back and recycle them before it disappears.  In lock-free mode
  // offloads only ever sit in buddies' steal inboxes (their SPSC rings
  // carry nothing but their own chunks); in mutex mode they sit in
  // buddies' MPMC capture queues.
  for (QueueState& other : queues_) {
    if (&other == &qs) continue;
    if (other.steal_inbox) {
      std::vector<driver::ChunkMeta> kept;
      driver::ChunkMeta meta;
      while (other.steal_inbox->try_claim(meta)) {
        if (meta.ring_id == queue) {
          recycle_to_owner(meta);
        } else {
          kept.push_back(meta);
        }
      }
      using Inbox = StealInbox<driver::ChunkMeta>;
      for (const driver::ChunkMeta& keep : kept) {
        if (other.steal_inbox->try_deposit(keep) != Inbox::Deposit::kOk) {
          throw std::logic_error("WirecapEngine: close sweep lost a chunk");
        }
      }
    }
    if (other.capture_queue) {
      std::deque<driver::ChunkMeta> kept;
      while (auto meta = other.capture_queue->try_pop()) {
        if (meta->ring_id == queue) {
          recycle_to_owner(*meta);
        } else {
          kept.push_back(*meta);
        }
      }
      for (const driver::ChunkMeta& meta : kept) {
        if (!other.capture_queue->try_push(meta)) {
          throw std::logic_error("WirecapEngine: close sweep lost a chunk");
        }
      }
    }
    if (other.current && other.current->meta.ring_id == queue) {
      drop_current(other);
    }
  }

  // Last: the recycle queue, which the drop_current() calls above may
  // have fed (a fully-released current chunk goes home via deref).
  while (auto meta = qs.recycle_queue->try_pop()) recycle_to_owner(*meta);

  // Chunks still held by application threads (outstanding_) cannot be
  // reclaimed synchronously; bumping the epoch makes their final
  // done()/TX completion drop the stale metadata instead of recycling
  // it into whatever pool a reopen creates.  Those strays can never
  // return to this (torn-down) pool, so their quota charge is settled
  // here, against the owning *tenant's* budget — leaving it on the
  // account would leak the tenant's quota permanently: the epoch check
  // in deref_n drops the metadata without another credit.
  credit_charged(queue, qs.charged);
  ++qs.epoch;
  qs.driver->close();
}

void WirecapEngine::drop_current(QueueState& qs) {
  if (!qs.current) return;
  const driver::ChunkMeta meta = qs.current->meta;
  const std::uint32_t undelivered = meta.pkt_count - qs.current->cursor;
  qs.current.reset();
  const std::uint64_t key = chunk_key(meta.ring_id, meta.chunk_id,
                                      queues_[meta.ring_id].epoch);
  for (std::uint32_t i = 0; i < undelivered; ++i) deref(key);
}

engines::TenantId WirecapEngine::register_tenant(
    const engines::TenantSpec& spec) {
  // The old set_buddy_group contract, preserved: grouped queues must be
  // open (out-of-range ids surface as std::out_of_range from at()).
  for (const std::uint32_t q : spec.queues) {
    if (!queues_.at(q).open) {
      throw std::logic_error("WirecapEngine: buddy queue not open");
    }
  }
  const engines::TenantId id = engines::CaptureEngine::register_tenant(spec);
  rebuild_tenant_wiring();
  bind_tenant_telemetry(id);
  return id;
}

void WirecapEngine::set_buddy_group(const std::vector<std::uint32_t>& queues) {
  if (queues.empty()) return;  // the old call was a no-op on an empty group
  engines::TenantSpec spec;
  spec.queues = queues;
  // Keyed on the lowest member so repeated calls over an evolving group
  // upsert one tenant, while disjoint groups registered by separate
  // calls coexist — both idioms the old API supported.
  spec.name = "legacy-q" + std::to_string(*std::min_element(queues.begin(),
                                                            queues.end()));
  register_tenant(spec);
}

void WirecapEngine::rebuild_tenant_wiring() {
  const std::vector<engines::TenantSpec>& specs = tenants();
  accounts_.resize(specs.size());
  // Reset every queue to the engine-wide defaults, then overlay each
  // spec.  Queues released from a tenant (upsert shrank its group, or
  // another spec claimed them) fall back to defaults with no buddies.
  for (std::uint32_t q = 0; q < queues_.size(); ++q) {
    QueueState& qs = queues_[q];
    qs.tenant = engines::kNoTenant;
    qs.buddies.clear();
    qs.offload_policy = config_.offload_policy;
    qs.offload_threshold = config_.offload_threshold;
    qs.numa_node = q < config_.queue_numa_node.size()
                       ? config_.queue_numa_node[q]
                       : config_.nic_numa_node;
  }
  for (engines::TenantId id = 0; id < specs.size(); ++id) {
    const engines::TenantSpec& spec = specs[id];
    accounts_[id].quota = spec.chunk_quota;
    for (const std::uint32_t q : spec.queues) {
      QueueState& qs = queues_[q];
      qs.tenant = id;
      for (const std::uint32_t other : spec.queues) {
        if (other != q) qs.buddies.push_back(other);
      }
      if (spec.offload_policy) qs.offload_policy = *spec.offload_policy;
      if (spec.offload_threshold) qs.offload_threshold = spec.offload_threshold;
      if (spec.numa_node) qs.numa_node = *spec.numa_node;
    }
  }
  // Budgets follow their queues: recompute each account's charged sum
  // so reassigning a queue moves its live chunks to the new owner.
  for (engines::TenantAccount& account : accounts_) account.charged = 0;
  for (const QueueState& qs : queues_) {
    if (qs.tenant != engines::kNoTenant) {
      accounts_[qs.tenant].charged += qs.charged;
    }
  }
}

const engines::TenantAccount& WirecapEngine::tenant_account(
    engines::TenantId tenant) const {
  return accounts_.at(tenant);
}

void WirecapEngine::credit_charged(std::uint32_t ring, std::uint64_t count) {
  if (count == 0) return;
  QueueState& owner = queues_[ring];
  if (owner.charged < count) {
    throw std::logic_error("WirecapEngine: tenant quota credit underflow");
  }
  owner.charged -= count;
  if (owner.tenant != engines::kNoTenant) {
    engines::TenantAccount& account = accounts_[owner.tenant];
    if (account.charged < count) {
      throw std::logic_error("WirecapEngine: tenant account underflow");
    }
    account.charged -= count;
  }
}

std::size_t WirecapEngine::quota_headroom(const QueueState& qs) const {
  if (qs.tenant == engines::kNoTenant) {
    return std::numeric_limits<std::size_t>::max();
  }
  const engines::TenantAccount& account = accounts_[qs.tenant];
  if (account.quota == 0) return std::numeric_limits<std::size_t>::max();
  return account.charged >= account.quota
             ? 0
             : static_cast<std::size_t>(account.quota - account.charged);
}

void WirecapEngine::poll(std::uint32_t queue) {
  QueueState& qs = queues_[queue];
  if (!qs.open) return;
  ++qs.extra.polls;
  Nanos cost = Nanos::zero();

  // 3. Recycle used chunks returned by application threads — batched:
  // one free-list lock round-trip to drain, one recycle_batch ioctl
  // validating every chunk with a single ring replenish at the end.
  recycle_scratch_.clear();
  while (qs.recycle_queue->try_pop_batch(recycle_scratch_,
                                         config_.chunk_count) > 0) {
  }
  if (!recycle_scratch_.empty()) {
    const std::size_t accepted = qs.driver->recycle_batch(recycle_scratch_);
    if (accepted != recycle_scratch_.size()) {
      throw std::logic_error("WirecapEngine: recycle of own chunk failed");
    }
    // The recycle queue only ever carries this ring's own chunks, so
    // the whole batch credits this queue's tenant budget.
    credit_charged(queue, accepted);
    cost += Nanos{static_cast<std::int64_t>(accepted) *
                  costs_.recycle_chunk_cost.count()};
  }

  // 1. Capture filled chunks from the ring (zero-copy; the timeout path
  // copies a partial chunk and reports how many packets it moved).  The
  // tenant quota throttles here, after the recycle drain freed budget:
  // a tenant at its cap stops *capturing* — its rings back up and
  // eventually drop at the NIC — without drawing down any other
  // tenant's pools (fairness by construction).
  std::vector<driver::ChunkMeta> captured;
  std::uint32_t copied = 0;
  const std::size_t headroom = quota_headroom(qs);
  if (headroom == 0) {
    ++accounts_[qs.tenant].quota_stalls;
  } else {
    copied = qs.driver->capture(
        scheduler_.now(),
        std::min(config_.max_chunks_per_capture, headroom), captured);
  }
  qs.charged += captured.size();
  if (qs.tenant != engines::kNoTenant) {
    accounts_[qs.tenant].charged += captured.size();
  }
  cost += Nanos{static_cast<std::int64_t>(copied) *
                costs_.partial_copy_cost.count()};
  cost += Nanos{static_cast<std::int64_t>(captured.size()) *
                costs_.capture_chunk_cost.count()};
  if (qs.numa_node != config_.nic_numa_node) {
    // Remote-socket capture: the chunk's descriptors and cell headers
    // are read across the interconnect (pool lives with this thread,
    // the NIC DMA'd into it from the other node).
    cost += Nanos{static_cast<std::int64_t>(captured.size()) *
                  costs_.numa_remote_capture_cost.count()};
  }

  // Arrival + capture stamps.  capture() produces either full chunks
  // (copied == 0) or exactly one rescue chunk (copied > 0), so the flag
  // applies to every meta of this round.
  if (latency_ && latency_->enabled()) [[unlikely]] {
    for (const driver::ChunkMeta& meta : captured) {
      journey_capture(meta, copied > 0);
    }
  }

  // A poll that moved data is a unit of capture-thread work in the
  // trace; idle polls are omitted to keep the ring for the useful ones.
  if (copied > 0 || !captured.empty()) {
    WIRECAP_TRACE(tracer_,
                  complete("capture.poll", "engine", scheduler_.now(), cost,
                           queue, "chunks", captured.size(), "copied_pkts",
                           copied));
  }

  // Park-and-retry keeps ordering: anything parked earlier goes first.
  std::deque<driver::ChunkMeta> to_place;
  to_place.swap(qs.pending);
  for (const auto& meta : captured) to_place.push_back(meta);
  while (!to_place.empty()) {
    const driver::ChunkMeta meta = to_place.front();
    to_place.pop_front();
    cost += dispatch(queue, meta);
  }

  const bool had_work = copied > 0 || !captured.empty();
  // The capture thread is a loop on its core: it pays for the work it
  // just did, then either continues immediately (data pending) or
  // blocks with a timeout (the poll interval).
  qs.capture_core->submit(sim::WorkPriority::kUser, cost, [this, queue,
                                                           had_work] {
    QueueState& state = queues_[queue];
    if (!state.open) return;
    if (had_work) {
      poll(queue);
    } else {
      scheduler_.schedule_after(costs_.capture_poll_interval,
                                [this, queue] { poll(queue); });
    }
  });
}

Nanos WirecapEngine::dispatch(std::uint32_t queue,
                              const driver::ChunkMeta& meta) {
  QueueState& qs = queues_[queue];
  const bool lockfree = config_.handoff == HandoffMode::kLockFree;
  Nanos handoff_cost =
      lockfree ? costs_.lockfree_handoff_cost : costs_.mutex_handoff_cost;
  std::uint32_t target = queue;

  // A queue's load toward the threshold T is its capture-queue depth
  // plus any registered spool backlog: chunks the disk shard has
  // accepted but not yet written are work the consumer side still owes,
  // so a slow disk pushes this queue over T (and makes it a poor
  // offload target) exactly like a slow application would.
  const auto effective_load = [this](std::uint32_t q) -> std::size_t {
    const QueueState& s = queues_[q];
    std::size_t load = capture_depth(s);
    if (s.spool_backlog) load += s.spool_backlog();
    return load;
  };

  // Per-queue knobs: a TenantSpec may have overridden the engine-wide
  // threshold/policy for this queue's group.
  if (qs.offload_threshold && !qs.buddies.empty()) {
    // One observation of the home load drives both the threshold test
    // and the keep-home compare below.  The load is volatile (spool
    // probes, concurrent consumers): re-reading it for the compare
    // could judge against a different value than the one that tripped
    // T, offloading when home already drained — or never offloading at
    // all when the probe oscillates.
    const std::size_t home_load = effective_load(queue);
    const double fill = static_cast<double>(home_load) /
                        static_cast<double>(config_.chunk_count);
    if (fill > *qs.offload_threshold) {
      // Long-term load imbalance indicator tripped: pick a buddy per the
      // configured policy (the paper's is least-busy).
      switch (qs.offload_policy) {
        case OffloadPolicy::kLeastBusy: {
          std::size_t best_len = std::numeric_limits<std::size_t>::max();
          for (const std::uint32_t buddy : qs.buddies) {
            if (!queues_[buddy].open) continue;
            const std::size_t len = effective_load(buddy);
            if (len < best_len) {
              best_len = len;
              target = buddy;
            }
          }
          // Only offload to somewhere actually less busy.
          if (best_len >= home_load) target = queue;
          break;
        }
        case OffloadPolicy::kRandomBuddy: {
          // Per-queue xorshift: deterministic, independent of workload
          // randomness and of every other queue's draws.
          qs.offload_rng ^= qs.offload_rng << 13;
          qs.offload_rng ^= qs.offload_rng >> 7;
          qs.offload_rng ^= qs.offload_rng << 17;
          target = qs.buddies[qs.offload_rng % qs.buddies.size()];
          break;
        }
        case OffloadPolicy::kRoundRobin:
          target = qs.buddies[qs.offload_rr++ % qs.buddies.size()];
          break;
      }
      // A buddy that closed after the group was bound still sits in the
      // buddy list; its capture queue would be destroyed on reopen with
      // our chunk inside, leaking it from the engine's accounting.
      if (!queues_[target].open) {
        if (target != queue) ++qs.extra.handoff_fallbacks;
        target = queue;
      }
    }
  }

  // Remote placement never blocks and never parks: a steal deposit
  // (lock-free) or a closed/full-aware push (mutex) either lands the
  // chunk or the loser falls home in one step.  Only the home queue may
  // park a chunk in `pending` — backpressure there is real (the one
  // bound consumer is behind), whereas a closed or contended buddy is
  // not a reason to hold the chunk hostage.
  std::size_t depth_at_push = 0;
  bool depth_known = false;
  if (target != queue) {
    bool placed = false;
    QueueState& ts = queues_[target];
    if (lockfree) {
      using Inbox = StealInbox<driver::ChunkMeta>;
      switch (ts.steal_inbox->try_deposit(meta)) {
        case Inbox::Deposit::kOk:
          placed = true;
          ++ts.extra.handoff_steals;
          break;
        case Inbox::Deposit::kContended:
          // Lost the CAS race against another depositor mid-slot: the
          // loser falls home rather than spinning on the buddy.
          ++qs.extra.handoff_contended;
          break;
        case Inbox::Deposit::kFull:
          break;
      }
    } else {
      const PushOutcome outcome = ts.capture_queue->push_result(meta);
      placed = outcome.ok();
      if (placed) {
        depth_at_push = outcome.depth;
        depth_known = true;
      }
      // kFull and kClosed both fall home immediately; kClosed in
      // particular must not reach `pending`, where it would inflate
      // pending_high_water waiting for backpressure that never clears.
    }
    if (!placed) {
      ++qs.extra.handoff_fallbacks;
      target = queue;
    }
  }

  if (target == queue) {
    const PushOutcome outcome = lockfree
                                    ? qs.capture_ring->try_push(meta)
                                    : qs.capture_queue->push_result(meta);
    if (!outcome.ok()) {
      // Nowhere to put it: hold the chunk; backpressure will show up as
      // pool exhaustion and, eventually, capture drops at the NIC.
      qs.pending.push_back(meta);
      qs.extra.pending_high_water =
          std::max(qs.extra.pending_high_water,
                   static_cast<std::uint64_t>(qs.pending.size()));
      return handoff_cost;
    }
    depth_at_push = outcome.depth;
    depth_known = true;
  }

  if (latency_ && latency_->enabled()) [[unlikely]] {
    journey_enqueue(meta, target != queue);
  }
  WIRECAP_TRACE(tracer_,
                instant("chunk.enqueue", "engine", scheduler_.now(), target,
                        "chunk", meta.chunk_id, "ring", meta.ring_id));
  if (target != queue) {
    ++qs.stats.chunks_offloaded_out;
    ++queues_[target].stats.chunks_offloaded_in;
    if (queues_[target].numa_node != qs.numa_node) {
      // Cross-socket offload: the enqueue and the consumer's reads
      // bounce cache lines over the interconnect.
      ++qs.extra.numa_remote_handoffs;
      handoff_cost += costs_.numa_remote_handoff_cost;
    }
    // The Figure 11 mechanism, event by event: which queue shed which
    // chunk to which buddy.
    WIRECAP_TRACE(tracer_,
                  instant("chunk.offload", "engine", scheduler_.now(), queue,
                          "to_queue", target, "chunk", meta.chunk_id));
  }
  QueueState& ts = queues_[target];
  // High-water from the depth the push itself observed — a second
  // size() read here can race a concurrent consumer and miss the peak
  // this push created.  (Steal deposits have no ordered depth; the
  // owner's drain and the sampler cover the inbox's ≤8 slots.)
  if (depth_known) {
    ts.extra.capture_queue_high_water =
        std::max(ts.extra.capture_queue_high_water,
                 static_cast<std::uint64_t>(depth_at_push));
  }
  if (ts.data_callback) {
    if (lockfree) {
      // Non-blocking mode: the consumer is poll-driven; kicking it is a
      // plain call in virtual time.
      ts.data_callback();
    } else {
      // Blocking mode: the consumer sleeps on the condvar, so delivery
      // pays the futex wake + scheduler dispatch before it runs.
      scheduler_.schedule_after(costs_.condvar_wakeup_delay, [this, target] {
        QueueState& sleeper = queues_[target];
        if (sleeper.open && sleeper.data_callback) sleeper.data_callback();
      });
    }
  }
  return handoff_cost;
}

std::optional<driver::ChunkMeta> WirecapEngine::pop_capture(QueueState& qs) {
  if (qs.capture_ring) {
    // Own traffic first (the SPSC fast path), then offloads buddies
    // deposited: claiming a ready slot is the consumer half of the
    // work-stealing handoff.
    driver::ChunkMeta meta;
    if (qs.capture_ring->try_pop(meta)) return meta;
    if (qs.steal_inbox && qs.steal_inbox->try_claim(meta)) return meta;
    return std::nullopt;
  }
  return qs.capture_queue ? qs.capture_queue->try_pop() : std::nullopt;
}

std::size_t WirecapEngine::capture_depth(const QueueState& qs) const {
  if (qs.capture_ring) {
    return qs.capture_ring->size() +
           (qs.steal_inbox ? qs.steal_inbox->size_approx() : 0);
  }
  return qs.capture_queue ? qs.capture_queue->size() : 0;
}

std::vector<driver::ChunkMeta> WirecapEngine::capture_metas(
    const QueueState& qs) const {
  std::vector<driver::ChunkMeta> metas;
  if (qs.capture_ring) {
    metas = qs.capture_ring->snapshot();
    if (qs.steal_inbox) {
      for (const driver::ChunkMeta& meta : qs.steal_inbox->snapshot()) {
        metas.push_back(meta);
      }
    }
    return metas;
  }
  if (qs.capture_queue) {
    for (const driver::ChunkMeta& meta : qs.capture_queue->snapshot()) {
      metas.push_back(meta);
    }
  }
  return metas;
}

std::optional<engines::CaptureView> WirecapEngine::try_next(
    std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  if (!qs.open) return std::nullopt;
  while (!qs.current) {
    auto meta = pop_capture(qs);
    if (!meta) return std::nullopt;
    if (meta->pkt_count == 0) {
      // Defensive: an empty capture (nothing to deliver) goes straight
      // home rather than minting a zero-packet view.
      if (queues_[meta->ring_id].driver->recycle(*meta).is_ok()) {
        credit_charged(meta->ring_id, 1);
      }
      continue;
    }
    qs.current = CurrentChunk{*meta, 0};
    const std::uint64_t epoch = queues_[meta->ring_id].epoch;
    outstanding_[chunk_key(meta->ring_id, meta->chunk_id, epoch)] =
        Outstanding{*meta, meta->pkt_count, epoch};
    if (latency_ && latency_->enabled()) [[unlikely]] {
      journey_dequeue(*meta, queue);
    }
    // Application-side dequeue of one chunk's worth of packets.
    WIRECAP_TRACE(tracer_,
                  instant("chunk.dequeue", "app", scheduler_.now(), queue,
                          "chunk", meta->chunk_id, "pkts", meta->pkt_count));
  }

  CurrentChunk& current = *qs.current;
  const driver::ChunkMeta meta = current.meta;
  const std::uint32_t cell_index = meta.first_cell + current.cursor;
  driver::RingBufferPool& pool = queues_[meta.ring_id].driver->pool();
  const driver::CellInfo& info = pool.cell_info(meta.chunk_id, cell_index);

  engines::CaptureView view;
  view.bytes = pool.cell(meta.chunk_id, cell_index).first(info.length);
  view.wire_len = info.wire_length;
  view.timestamp = Nanos{info.timestamp_ns};
  view.seq = info.seq;
  view.handle = make_handle(meta.ring_id, queues_[meta.ring_id].epoch,
                            meta.chunk_id, cell_index);

  ++current.cursor;
  if (current.cursor == meta.pkt_count) qs.current.reset();
  ++qs.stats.delivered;
  return view;
}

std::optional<engines::ChunkCaptureView> WirecapEngine::try_next_chunk(
    std::uint32_t queue, std::size_t /*max_packets*/) {
  QueueState& qs = queues_.at(queue);
  if (!qs.open) return std::nullopt;

  driver::ChunkMeta meta;
  std::uint32_t start_cursor = 0;
  if (qs.current) {
    // A chunk partially consumed through try_next(): hand over its
    // remaining packets.  Their refcount share is already registered.
    meta = qs.current->meta;
    start_cursor = qs.current->cursor;
    qs.current.reset();
  } else {
    for (;;) {
      auto popped = pop_capture(qs);
      if (!popped) return std::nullopt;
      if (popped->pkt_count == 0) {
        if (queues_[popped->ring_id].driver->recycle(*popped).is_ok()) {
          credit_charged(popped->ring_id, 1);
        }
        continue;
      }
      meta = *popped;
      break;
    }
    const std::uint64_t epoch = queues_[meta.ring_id].epoch;
    outstanding_[chunk_key(meta.ring_id, meta.chunk_id, epoch)] =
        Outstanding{meta, meta.pkt_count, epoch};
    if (latency_ && latency_->enabled()) [[unlikely]] {
      journey_dequeue(meta, queue);
    }
    WIRECAP_TRACE(tracer_,
                  instant("chunk.dequeue", "app", scheduler_.now(), queue,
                          "chunk", meta.chunk_id, "pkts", meta.pkt_count));
  }

  const std::uint64_t epoch = queues_[meta.ring_id].epoch;
  driver::RingBufferPool& pool = queues_[meta.ring_id].driver->pool();
  engines::ChunkCaptureView chunk;
  chunk.source_ring = meta.ring_id;
  chunk.packets.reserve(meta.pkt_count - start_cursor);
  for (std::uint32_t cursor = start_cursor; cursor < meta.pkt_count; ++cursor) {
    const std::uint32_t cell_index = meta.first_cell + cursor;
    const driver::CellInfo& info = pool.cell_info(meta.chunk_id, cell_index);
    engines::CaptureView view;
    view.bytes = pool.cell(meta.chunk_id, cell_index).first(info.length);
    view.wire_len = info.wire_length;
    view.timestamp = Nanos{info.timestamp_ns};
    view.seq = info.seq;
    view.handle = make_handle(meta.ring_id, epoch, meta.chunk_id, cell_index);
    chunk.packets.push_back(view);
  }
  qs.stats.delivered += meta.pkt_count - start_cursor;
  return chunk;
}

std::size_t WirecapEngine::try_next_batch(std::uint32_t queue,
                                          std::size_t max_packets,
                                          engines::PacketBatch& batch) {
  batch.clear();
  batch.source_ring = queue;
  QueueState& qs = queues_.at(queue);
  if (!qs.open || max_packets == 0) return 0;
  while (!qs.current) {
    auto meta = pop_capture(qs);
    if (!meta) return 0;
    if (meta->pkt_count == 0) {
      if (queues_[meta->ring_id].driver->recycle(*meta).is_ok()) {
        credit_charged(meta->ring_id, 1);
      }
      continue;
    }
    qs.current = CurrentChunk{*meta, 0};
    const std::uint64_t epoch = queues_[meta->ring_id].epoch;
    outstanding_[chunk_key(meta->ring_id, meta->chunk_id, epoch)] =
        Outstanding{*meta, meta->pkt_count, epoch};
    if (latency_ && latency_->enabled()) [[unlikely]] {
      journey_dequeue(*meta, queue);
    }
    WIRECAP_TRACE(tracer_,
                  instant("chunk.dequeue", "app", scheduler_.now(), queue,
                          "chunk", meta->chunk_id, "pkts", meta->pkt_count));
  }

  // A batch never spans chunks (chunk == batch when max_packets >= M):
  // every view shares one chunk key, so done_batch() derefs once.
  CurrentChunk& current = *qs.current;
  const driver::ChunkMeta meta = current.meta;
  const std::uint64_t epoch = queues_[meta.ring_id].epoch;
  driver::RingBufferPool& pool = queues_[meta.ring_id].driver->pool();
  const std::uint32_t take = std::min(
      static_cast<std::uint32_t>(std::min<std::size_t>(
          max_packets, std::numeric_limits<std::uint32_t>::max())),
      meta.pkt_count - current.cursor);
  batch.source_ring = meta.ring_id;
  // Resolve the chunk once — one bounds check, two base pointers — then
  // fill views by plain indexing instead of two checked pool calls per
  // cell.  This is the delivery half of the batch path's amortization.
  const std::span<std::byte> bytes = pool.chunk_bytes(meta.chunk_id);
  const std::span<const driver::CellInfo> cells =
      pool.chunk_cells(meta.chunk_id);
  const std::uint32_t cell_size = pool.cell_size();
  batch.views.resize(take);
  for (std::uint32_t i = 0; i < take; ++i) {
    const std::uint32_t cell_index = meta.first_cell + current.cursor + i;
    const driver::CellInfo& info = cells[cell_index];
    engines::CaptureView& view = batch.views[i];
    view.bytes = bytes.subspan(
        static_cast<std::size_t>(cell_index) * cell_size, info.length);
    view.wire_len = info.wire_length;
    view.timestamp = Nanos{info.timestamp_ns};
    view.seq = info.seq;
    view.handle = make_handle(meta.ring_id, epoch, meta.chunk_id, cell_index);
  }
  current.cursor += take;
  if (current.cursor == meta.pkt_count) qs.current.reset();
  qs.stats.delivered += take;  // one accounting update per batch
  // One ref covers the whole batch: a batch never spans chunks, so any
  // view's handle resolves to the one chunk key at release time.
  batch.refs.push_back(engines::BatchRef{batch.views[0].handle, take});
  return take;
}

void WirecapEngine::done_batch(std::uint32_t queue,
                               const engines::PacketBatch& batch) {
  if (!batch.refs.empty()) {
    // The base settles refs via release_ref() → deref_n: one refcount
    // decrement per batch regardless of how the views were compacted.
    engines::CaptureEngine::done_batch(queue, batch);
    return;
  }
  // Hand-built batch with no refs: release by views.  They arrive in
  // capture order, so same-chunk views are consecutive — collapse each
  // run into a single deref_n.  (Robust to callers that filtered or
  // reordered the batch — a run is just shorter then.)
  std::size_t i = 0;
  const std::size_t n = batch.views.size();
  while (i < n) {
    const std::uint64_t key = handle_key(batch.views[i].handle);
    std::size_t j = i + 1;
    while (j < n && handle_key(batch.views[j].handle) == key) ++j;
    deref_n(key, static_cast<std::uint32_t>(j - i));
    i = j;
  }
}

void WirecapEngine::release_ref(std::uint32_t /*queue*/, std::uint64_t handle,
                                std::uint32_t count) {
  deref_n(handle_key(handle), count);
}

void WirecapEngine::add_batch_shares(std::uint32_t /*queue*/,
                                     const engines::PacketBatch& batch,
                                     std::uint32_t extra) {
  if (extra == 0) return;
  for (const engines::BatchRef& ref : batch.refs) {
    if (ref.packets == 0) continue;
    const auto it = outstanding_.find(handle_key(ref.handle));
    if (it == outstanding_.end()) {
      throw std::logic_error("WirecapEngine: shares on unknown chunk");
    }
    Outstanding& entry = it->second;
    entry.remaining += ref.packets * extra;
    entry.shares += extra;
    // Mirror the grant into the kernel's share count so a buggy early
    // recycle of a fanned-out chunk is refused at the pool boundary.
    QueueState& owner = queues_[entry.meta.ring_id];
    if (entry.epoch == owner.epoch) {
      const Status status =
          owner.driver->pool().add_shares(entry.meta.chunk_id, extra);
      if (!status.is_ok()) {
        throw std::logic_error("WirecapEngine: pool rejected share grant");
      }
    }
  }
}

void WirecapEngine::deref_n(std::uint64_t key, std::uint32_t count) {
  if (count == 0) return;
  const auto it = outstanding_.find(key);
  if (it == outstanding_.end()) {
    throw std::logic_error("WirecapEngine: release of unknown chunk");
  }
  if (it->second.remaining < count) {
    throw std::logic_error("WirecapEngine: over-release of chunk");
  }
  it->second.remaining -= count;
  if (it->second.remaining == 0) {
    const driver::ChunkMeta meta = it->second.meta;
    const std::uint64_t epoch = it->second.epoch;
    const std::uint32_t shares = it->second.shares;
    outstanding_.erase(it);
    QueueState& owner = queues_[meta.ring_id];
    if (epoch != owner.epoch) {
      // The owning queue closed since this chunk was dequeued; its pool
      // is gone (or about to be).  Dropping the metadata is the correct
      // end of life — recycling it would corrupt a reopened pool.
      return;
    }
    if (shares != 0) {
      // Every fan-out share has been released (that is what remaining
      // reaching zero means); clear the kernel-side count so the
      // recycle below passes its shares-outstanding check.
      const Status status =
          owner.driver->pool().release_shares(meta.chunk_id, shares);
      if (!status.is_ok()) {
        throw std::logic_error("WirecapEngine: pool share release failed");
      }
    }
    if (latency_ && latency_->enabled()) [[unlikely]] {
      journey_release(meta);
    }
    // The chunk goes home: recycling happens on the pool that owns it,
    // regardless of which application thread processed it.
    if (!owner.recycle_queue->try_push(meta)) {
      throw std::logic_error("WirecapEngine: recycle queue overflow");
    }
  }
}

void WirecapEngine::done(std::uint32_t /*queue*/,
                         const engines::CaptureView& view) {
  deref(handle_key(view.handle));
}

// --- chunk-journey stamping (callers gate on latency_->enabled()) ---

void WirecapEngine::journey_capture(const driver::ChunkMeta& meta,
                                    bool rescued) {
  QueueState& owner = queues_[meta.ring_id];
  if (meta.chunk_id >= owner.journeys.size()) return;
  telemetry::ChunkJourney& j = owner.journeys[meta.chunk_id];
  j = telemetry::ChunkJourney{};
  j.ring = meta.ring_id;
  j.chunk = meta.chunk_id;
  j.pkt_count = meta.pkt_count;
  j.rescued = rescued;
  j.arrival_ns = owner.driver->chunk_arrival(meta).count();
  j.captured_ns = scheduler_.now().count();
}

void WirecapEngine::journey_enqueue(const driver::ChunkMeta& meta,
                                    bool stolen) {
  QueueState& owner = queues_[meta.ring_id];
  if (meta.chunk_id >= owner.journeys.size()) return;
  telemetry::ChunkJourney& j = owner.journeys[meta.chunk_id];
  // Only the first successful enqueue counts (close-time sweeps re-push
  // survivors through raw queue operations, never through here).
  if (j.arrival_ns < 0 || j.enqueued_ns >= 0) return;
  j.enqueued_ns = scheduler_.now().count();
  j.stolen = stolen;
}

void WirecapEngine::journey_dequeue(const driver::ChunkMeta& meta,
                                    std::uint32_t queue) {
  QueueState& owner = queues_[meta.ring_id];
  if (meta.chunk_id >= owner.journeys.size()) return;
  telemetry::ChunkJourney& j = owner.journeys[meta.chunk_id];
  if (j.arrival_ns < 0 || j.dequeued_ns >= 0) return;
  j.dequeued_ns = scheduler_.now().count();
  j.dequeue_queue = queue;
}

void WirecapEngine::journey_release(const driver::ChunkMeta& meta) {
  QueueState& owner = queues_[meta.ring_id];
  if (meta.chunk_id >= owner.journeys.size()) return;
  telemetry::ChunkJourney& j = owner.journeys[meta.chunk_id];
  if (j.arrival_ns < 0) return;
  j.released_ns = scheduler_.now().count();
  latency_->record_journey(j);
  WIRECAP_TRACE(tracer_, instant("chunk.release", "engine", scheduler_.now(),
                                 meta.ring_id, "chunk", meta.chunk_id));
  if (j.complete()) {
    // One self-contained span per chunk: ts/dur give the end-to-end
    // window, the args carry the capture and queue-wait shares (deliver
    // = dur - capture - queue_wait), so offline tools fold journeys
    // into stage percentiles without any event correlation.
    WIRECAP_TRACE(tracer_,
                  complete("chunk.journey", "latency", Nanos{j.arrival_ns},
                           Nanos{j.e2e_ns()}, meta.ring_id, "capture",
                           static_cast<std::uint64_t>(j.capture_ns()),
                           "queue_wait",
                           static_cast<std::uint64_t>(j.queue_wait_ns())));
  }
  j = telemetry::ChunkJourney{};
}

bool WirecapEngine::forward(std::uint32_t /*queue*/,
                            const engines::CaptureView& view,
                            nic::MultiQueueNic& out_nic,
                            std::uint32_t tx_queue) {
  // Zero-copy forwarding: attach the pool cell to a transmit descriptor;
  // the chunk cannot be recycled until the frame has left the wire.
  const std::uint64_t key = handle_key(view.handle);
  nic::TxRequest request;
  request.frame = view.bytes;
  request.wire_length = view.wire_len;
  request.seq = view.seq;
  request.on_complete = [this, key] { deref(key); };
  if (!out_nic.transmit(tx_queue, std::move(request))) {
    deref(key);  // TX ring full: packet dropped, buffer released
    return false;
  }
  return true;
}

void WirecapEngine::set_data_callback(std::uint32_t queue,
                                      std::function<void()> fn) {
  queues_.at(queue).data_callback = std::move(fn);
}

void WirecapEngine::set_spool_backlog_probe(std::uint32_t queue,
                                            std::function<std::size_t()> probe) {
  queues_.at(queue).spool_backlog = std::move(probe);
}

engines::EngineQueueStats WirecapEngine::queue_stats(
    std::uint32_t queue) const {
  engines::EngineQueueStats stats = queues_.at(queue).stats;
  if (queues_[queue].driver) {
    stats.copies += queues_[queue].driver->stats().packets_copied;
  }
  return stats;
}

const driver::WirecapDriverStats& WirecapEngine::driver_stats(
    std::uint32_t queue) const {
  return queues_.at(queue).driver->stats();
}

const WirecapQueueExtraStats& WirecapEngine::extra_stats(
    std::uint32_t queue) const {
  return queues_.at(queue).extra;
}

const driver::RingBufferPool& WirecapEngine::pool(std::uint32_t queue) const {
  return queues_.at(queue).driver->pool();
}

double WirecapEngine::capture_core_utilization(std::uint32_t queue) const {
  const QueueState& qs = queues_.at(queue);
  return qs.capture_core ? qs.capture_core->utilization() : 0.0;
}

void WirecapEngine::bind_telemetry(telemetry::Telemetry& telemetry,
                                   const std::string& prefix,
                                   std::uint32_t num_queues) {
  engines::CaptureEngine::bind_telemetry(telemetry, prefix, num_queues);
  telemetry_ = &telemetry;
  telemetry_prefix_ = prefix;
  latency_ = &telemetry.latency;
  for (std::uint32_t q = 0; q < num_queues && q < queues_.size(); ++q) {
    if (queues_[q].open) bind_queue_telemetry(q);
  }
  // Tenants registered before bind_telemetry() publish like tenants
  // registered after (register_tenant binds the late ones).
  for (engines::TenantId id = 0; id < tenants().size(); ++id) {
    bind_tenant_telemetry(id);
  }
  telemetry.probes.push_back([this](Nanos now) { sample_depths(now); });
}

void WirecapEngine::bind_tenant_telemetry(engines::TenantId tenant) {
  if (!telemetry_) return;
  const std::string tp =
      telemetry_prefix_ + ".tenant." + std::to_string(tenant) + ".";
  telemetry::MetricRegistry& registry = telemetry_->registry;
  // Upserting a tenant re-enters here; the existing bindings already
  // resolve through live engine state, so rebinding would only churn.
  if (registry.contains(tp + "charged")) return;
  registry.bind_gauge(tp + "charged", [this, tenant] {
    return tenant < accounts_.size()
               ? static_cast<double>(accounts_[tenant].charged)
               : 0.0;
  });
  registry.bind_gauge(tp + "quota", [this, tenant] {
    return tenant < accounts_.size()
               ? static_cast<double>(accounts_[tenant].quota)
               : 0.0;
  });
  registry.bind_counter(tp + "quota_stalls", [this, tenant] {
    return tenant < accounts_.size() ? accounts_[tenant].quota_stalls
                                     : std::uint64_t{0};
  });
  registry.bind_gauge(tp + "queues", [this, tenant] {
    return tenant < tenants().size()
               ? static_cast<double>(tenants()[tenant].queues.size())
               : 0.0;
  });
  registry.bind_counter(tp + "delivered", [this, tenant] {
    std::uint64_t total = 0;
    if (tenant < tenants().size()) {
      for (const std::uint32_t q : tenants()[tenant].queues) {
        if (q < queues_.size()) total += queues_[q].stats.delivered;
      }
    }
    return total;
  });
}

void WirecapEngine::bind_queue_telemetry(std::uint32_t queue) {
  if (!telemetry_) return;
  QueueState& qs = queues_[queue];
  const std::string qp = telemetry_prefix_ + ".q" + std::to_string(queue) + ".";
  telemetry::MetricRegistry& registry = telemetry_->registry;
  // Every binding resolves through the QueueState at sample time: a
  // close()/open() cycle replaces the driver and queues, and bindings
  // made against the old instances would dangle.  Liveness gauges also
  // test qs.open so a closed queue reads 0 (tombstoned) instead of the
  // last state of its dead driver/queues until a reopen revives them.
  registry.bind_gauge(qp + "capture_queue.depth", [this, &qs] {
    return qs.open ? static_cast<double>(capture_depth(qs)) : 0.0;
  });
  registry.bind_gauge(qp + "pending.depth", [&qs] {
    return qs.open ? static_cast<double>(qs.pending.size()) : 0.0;
  });
  registry.bind_gauge(qp + "pool.free_chunks", [&qs] {
    return qs.open && qs.driver
               ? static_cast<double>(qs.driver->pool().free_chunks())
               : 0.0;
  });
  registry.bind_gauge(qp + "capture_core.utilization", [&qs] {
    return qs.open && qs.capture_core ? qs.capture_core->utilization() : 0.0;
  });
  registry.bind_gauge(qp + "spool_backlog", [&qs] {
    return qs.spool_backlog ? static_cast<double>(qs.spool_backlog()) : 0.0;
  });
  registry.bind_counter(qp + "capture_queue.high_water", [&qs] {
    return qs.extra.capture_queue_high_water;
  });
  registry.bind_counter(qp + "pending.high_water", [&qs] {
    return qs.extra.pending_high_water;
  });
  registry.bind_counter(qp + "polls", [&qs] { return qs.extra.polls; });
  // Work-stealing handoff outcomes (lock-free mode; fallbacks also
  // count mutex-mode remote pushes refused as full/closed).
  registry.bind_counter(qp + "handoff.steals",
                        [&qs] { return qs.extra.handoff_steals; });
  registry.bind_counter(qp + "handoff.contended",
                        [&qs] { return qs.extra.handoff_contended; });
  registry.bind_counter(qp + "handoff.fallbacks",
                        [&qs] { return qs.extra.handoff_fallbacks; });
  registry.bind_counter(qp + "handoff.numa_remote",
                        [&qs] { return qs.extra.numa_remote_handoffs; });
  registry.bind_gauge(qp + "numa_node", [&qs] {
    return static_cast<double>(qs.numa_node);
  });
  const auto driver_counter = [&registry, &qs, &qp](
                                  const char* name,
                                  std::uint64_t driver::WirecapDriverStats::*
                                      field) {
    registry.bind_counter(qp + name, [&qs, field] {
      return qs.driver ? qs.driver->stats().*field : 0;
    });
  };
  driver_counter("driver.chunks_captured",
                 &driver::WirecapDriverStats::chunks_captured);
  driver_counter("driver.partial_rescues",
                 &driver::WirecapDriverStats::partial_rescues);
  driver_counter("driver.packets_copied",
                 &driver::WirecapDriverStats::packets_copied);
  driver_counter("driver.packets_captured",
                 &driver::WirecapDriverStats::packets_captured);
  driver_counter("driver.chunks_recycled",
                 &driver::WirecapDriverStats::chunks_recycled);
  driver_counter("driver.recycle_rejects",
                 &driver::WirecapDriverStats::recycle_rejects);
  driver_counter("driver.attach_failures",
                 &driver::WirecapDriverStats::attach_failures);
  // Per-stage latency percentiles, attributed to the owning ring.  Only
  // bound when the harness enabled the LatencyTracker before binding the
  // engine: 16 extra gauges per queue would otherwise flood small trace
  // rings with sampler counter events in runs that never record a
  // journey.
  if (telemetry_->latency.enabled()) {
    using Stage = telemetry::LatencyTracker::Stage;
    static constexpr struct {
      const char* name;
      Stage stage;
    } kStages[] = {{"e2e", Stage::kE2e},
                   {"capture", Stage::kCapture},
                   {"queue_wait", Stage::kQueueWait},
                   {"deliver", Stage::kDeliver}};
    static constexpr struct {
      const char* name;
      double q;
    } kQuantiles[] = {
        {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};
    for (const auto& stage : kStages) {
      for (const auto& quantile : kQuantiles) {
        registry.bind_gauge(
            qp + "latency." + stage.name + "." + quantile.name,
            [this, queue, stage = stage.stage, q = quantile.q] {
              return telemetry_->latency.stage_quantile(queue, stage, q);
            });
      }
    }
  }
  if (qs.driver) {
    qs.driver->set_tracer(&telemetry_->tracer,
                          [this] { return scheduler_.now(); });
  }
}

void WirecapEngine::set_pool_observer(driver::PoolObserver* observer) {
  pool_observer_ = observer;
  for (QueueState& qs : queues_) {
    if (qs.driver) qs.driver->pool().set_observer(observer);
  }
}

WirecapEngine::CapturedCensus WirecapEngine::captured_census(
    std::uint32_t ring) const {
  CapturedCensus census;
  const QueueState& owner = queues_.at(ring);
  for (const QueueState& qs : queues_) {
    for (const driver::ChunkMeta& meta : capture_metas(qs)) {
      if (meta.ring_id == ring) ++census.in_capture_queues;
    }
    for (const driver::ChunkMeta& meta : qs.pending) {
      if (meta.ring_id == ring) ++census.in_pending;
    }
  }
  if (owner.recycle_queue) {
    census.in_recycle_queue = owner.recycle_queue->snapshot().size();
  }
  for (const auto& [key, entry] : outstanding_) {
    if (entry.meta.ring_id == ring && entry.epoch == owner.epoch) {
      ++census.outstanding;
    }
  }
  return census;
}

WirecapEngine::TenantCensus WirecapEngine::tenant_census(
    engines::TenantId tenant) const {
  TenantCensus census;
  if (tenant < accounts_.size()) {
    census.account_charged = accounts_[tenant].charged;
  }
  for (std::uint32_t q = 0; q < queues_.size(); ++q) {
    const QueueState& qs = queues_[q];
    if (qs.tenant != tenant || !qs.open) continue;
    census.queue_charged += qs.charged;
    census.pool_captured += qs.driver->pool().state_counts().captured;
    census.engine_census += captured_census(q).total();
  }
  return census;
}

void WirecapEngine::sample_depths(Nanos /*now*/) {
  for (QueueState& qs : queues_) {
    if (!qs.open) continue;
    qs.extra.capture_queue_high_water =
        std::max(qs.extra.capture_queue_high_water,
                 static_cast<std::uint64_t>(capture_depth(qs)));
    qs.extra.pending_high_water = std::max(
        qs.extra.pending_high_water,
        static_cast<std::uint64_t>(qs.pending.size()));
  }
}

std::uint64_t WirecapEngine::total_pool_bytes() const {
  std::uint64_t total = 0;
  for (const auto& qs : queues_) {
    if (qs.driver) total += qs.driver->pool().memory_bytes();
  }
  return total;
}

}  // namespace wirecap::core
