#include "core/wirecap_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace wirecap::core {

WirecapEngine::WirecapEngine(sim::Scheduler& scheduler,
                             nic::MultiQueueNic& nic, WirecapConfig config,
                             sim::CostModel costs)
    : scheduler_(scheduler), nic_(nic), config_(config), costs_(costs) {
  if (config_.offload_threshold &&
      (*config_.offload_threshold <= 0.0 || *config_.offload_threshold > 1.0)) {
    throw std::invalid_argument("WirecapEngine: T must be in (0, 1]");
  }
  queues_.resize(nic_.config().num_rx_queues);
}

void WirecapEngine::open(std::uint32_t queue, sim::SimCore& /*app_core*/) {
  QueueState& qs = queues_.at(queue);
  if (qs.open) return;
  qs.open = true;

  driver::WirecapDriverConfig driver_config;
  driver_config.cells_per_chunk = config_.cells_per_chunk;
  driver_config.chunk_count = config_.chunk_count;
  driver_config.cell_size = config_.cell_size;
  driver_config.partial_chunk_timeout = costs_.partial_chunk_timeout;
  qs.driver = std::make_unique<driver::WirecapQueueDriver>(nic_, queue,
                                                           driver_config);

  // A dedicated core for this queue's capture thread, distinct from any
  // application core id.
  qs.capture_core = std::make_unique<sim::SimCore>(
      scheduler_, 1000 + nic_.nic_id() * 64 + queue);

  // Capture queues may receive chunks from every buddy, so size them for
  // the whole NIC's chunk population.
  const std::size_t capacity = static_cast<std::size_t>(config_.chunk_count) *
                               nic_.config().num_rx_queues;
  qs.capture_queue = std::make_unique<MpmcQueue<driver::ChunkMeta>>(capacity);
  qs.recycle_queue = std::make_unique<MpmcQueue<driver::ChunkMeta>>(
      config_.chunk_count);

  qs.driver->open();
  poll(queue);
}

void WirecapEngine::close(std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  if (!qs.open) return;
  qs.open = false;
  qs.driver->close();
  qs.data_callback = nullptr;
}

void WirecapEngine::set_buddy_group(const std::vector<std::uint32_t>& queues) {
  for (const std::uint32_t q : queues) {
    QueueState& qs = queues_.at(q);
    if (!qs.open) {
      throw std::logic_error("WirecapEngine: buddy queue not open");
    }
    qs.buddies.clear();
    for (const std::uint32_t other : queues) {
      if (other != q) qs.buddies.push_back(other);
    }
  }
}

void WirecapEngine::poll(std::uint32_t queue) {
  QueueState& qs = queues_[queue];
  if (!qs.open) return;
  ++qs.extra.polls;
  Nanos cost = Nanos::zero();

  // 3. Recycle used chunks returned by application threads.
  while (auto meta = qs.recycle_queue->try_pop()) {
    const Status status = qs.driver->recycle(*meta);
    if (!status.is_ok()) {
      throw std::logic_error("WirecapEngine: recycle of own chunk failed");
    }
    cost += costs_.recycle_chunk_cost;
  }

  // 1. Capture filled chunks from the ring (zero-copy; the timeout path
  // copies a partial chunk and reports how many packets it moved).
  std::vector<driver::ChunkMeta> captured;
  const std::uint32_t copied = qs.driver->capture(
      scheduler_.now(), config_.max_chunks_per_capture, captured);
  cost += Nanos{static_cast<std::int64_t>(copied) *
                costs_.partial_copy_cost.count()};
  cost += Nanos{static_cast<std::int64_t>(captured.size()) *
                costs_.capture_chunk_cost.count()};

  // A poll that moved data is a unit of capture-thread work in the
  // trace; idle polls are omitted to keep the ring for the useful ones.
  if (copied > 0 || !captured.empty()) {
    WIRECAP_TRACE(tracer_,
                  complete("capture.poll", "engine", scheduler_.now(), cost,
                           queue, "chunks", captured.size(), "copied_pkts",
                           copied));
  }

  // Park-and-retry keeps ordering: anything parked earlier goes first.
  std::deque<driver::ChunkMeta> to_place;
  to_place.swap(qs.pending);
  for (const auto& meta : captured) to_place.push_back(meta);
  while (!to_place.empty()) {
    const driver::ChunkMeta meta = to_place.front();
    to_place.pop_front();
    dispatch(queue, meta);
  }

  const bool had_work = copied > 0 || !captured.empty();
  // The capture thread is a loop on its core: it pays for the work it
  // just did, then either continues immediately (data pending) or
  // blocks with a timeout (the poll interval).
  qs.capture_core->submit(sim::WorkPriority::kUser, cost, [this, queue,
                                                           had_work] {
    QueueState& state = queues_[queue];
    if (!state.open) return;
    if (had_work) {
      poll(queue);
    } else {
      scheduler_.schedule_after(costs_.capture_poll_interval,
                                [this, queue] { poll(queue); });
    }
  });
}

void WirecapEngine::dispatch(std::uint32_t queue,
                             const driver::ChunkMeta& meta) {
  QueueState& qs = queues_[queue];
  std::uint32_t target = queue;

  if (config_.offload_threshold && !qs.buddies.empty()) {
    const double fill =
        static_cast<double>(qs.capture_queue->size()) /
        static_cast<double>(config_.chunk_count);
    if (fill > *config_.offload_threshold) {
      // Long-term load imbalance indicator tripped: pick a buddy per the
      // configured policy (the paper's is least-busy).
      switch (config_.offload_policy) {
        case OffloadPolicy::kLeastBusy: {
          std::size_t best_len = std::numeric_limits<std::size_t>::max();
          for (const std::uint32_t buddy : qs.buddies) {
            const std::size_t len = queues_[buddy].capture_queue->size();
            if (len < best_len) {
              best_len = len;
              target = buddy;
            }
          }
          // Only offload to somewhere actually less busy.
          if (best_len >= qs.capture_queue->size()) target = queue;
          break;
        }
        case OffloadPolicy::kRandomBuddy: {
          // xorshift: deterministic, independent of workload randomness.
          offload_rng_ ^= offload_rng_ << 13;
          offload_rng_ ^= offload_rng_ >> 7;
          offload_rng_ ^= offload_rng_ << 17;
          target = qs.buddies[offload_rng_ % qs.buddies.size()];
          break;
        }
        case OffloadPolicy::kRoundRobin:
          target = qs.buddies[offload_rr_++ % qs.buddies.size()];
          break;
      }
    }
  }

  if (!queues_[target].capture_queue->try_push(meta)) {
    if (target == queue || !qs.capture_queue->try_push(meta)) {
      // Nowhere to put it: hold the chunk; backpressure will show up as
      // pool exhaustion and, eventually, capture drops at the NIC.
      qs.pending.push_back(meta);
      qs.extra.pending_high_water =
          std::max(qs.extra.pending_high_water,
                   static_cast<std::uint64_t>(qs.pending.size()));
      return;
    }
    target = queue;
  }

  if (target != queue) {
    ++qs.stats.chunks_offloaded_out;
    ++queues_[target].stats.chunks_offloaded_in;
    // The Figure 11 mechanism, event by event: which queue shed which
    // chunk to which buddy.
    WIRECAP_TRACE(tracer_,
                  instant("chunk.offload", "engine", scheduler_.now(), queue,
                          "to_queue", target, "chunk", meta.chunk_id));
  }
  QueueState& ts = queues_[target];
  ts.extra.capture_queue_high_water = std::max(
      ts.extra.capture_queue_high_water,
      static_cast<std::uint64_t>(ts.capture_queue->size()));
  if (ts.data_callback) ts.data_callback();
}

std::optional<engines::CaptureView> WirecapEngine::try_next(
    std::uint32_t queue) {
  QueueState& qs = queues_.at(queue);
  if (!qs.open) return std::nullopt;
  if (!qs.current) {
    auto meta = qs.capture_queue->try_pop();
    if (!meta) return std::nullopt;
    qs.current = CurrentChunk{*meta, 0};
    outstanding_[chunk_key(meta->ring_id, meta->chunk_id)] =
        Outstanding{*meta, meta->pkt_count};
    // Application-side dequeue of one chunk's worth of packets.
    WIRECAP_TRACE(tracer_,
                  instant("chunk.dequeue", "app", scheduler_.now(), queue,
                          "chunk", meta->chunk_id, "pkts", meta->pkt_count));
  }

  CurrentChunk& current = *qs.current;
  const driver::ChunkMeta meta = current.meta;
  const std::uint32_t cell_index = meta.first_cell + current.cursor;
  driver::RingBufferPool& pool = queues_[meta.ring_id].driver->pool();
  const driver::CellInfo& info = pool.cell_info(meta.chunk_id, cell_index);

  engines::CaptureView view;
  view.bytes = pool.cell(meta.chunk_id, cell_index).first(info.length);
  view.wire_len = info.wire_length;
  view.timestamp = Nanos{info.timestamp_ns};
  view.seq = info.seq;
  view.handle = make_handle(meta.ring_id, meta.chunk_id, cell_index);

  ++current.cursor;
  if (current.cursor == meta.pkt_count) qs.current.reset();
  ++qs.stats.delivered;
  return view;
}

void WirecapEngine::deref(std::uint64_t key) {
  const auto it = outstanding_.find(key);
  if (it == outstanding_.end()) {
    throw std::logic_error("WirecapEngine: release of unknown chunk");
  }
  if (--it->second.remaining == 0) {
    const driver::ChunkMeta meta = it->second.meta;
    outstanding_.erase(it);
    // The chunk goes home: recycling happens on the pool that owns it,
    // regardless of which application thread processed it.
    if (!queues_[meta.ring_id].recycle_queue->try_push(meta)) {
      throw std::logic_error("WirecapEngine: recycle queue overflow");
    }
  }
}

void WirecapEngine::done(std::uint32_t /*queue*/,
                         const engines::CaptureView& view) {
  deref(chunk_key(handle_ring(view.handle), handle_chunk(view.handle)));
}

bool WirecapEngine::forward(std::uint32_t /*queue*/,
                            const engines::CaptureView& view,
                            nic::MultiQueueNic& out_nic,
                            std::uint32_t tx_queue) {
  // Zero-copy forwarding: attach the pool cell to a transmit descriptor;
  // the chunk cannot be recycled until the frame has left the wire.
  const std::uint64_t key =
      chunk_key(handle_ring(view.handle), handle_chunk(view.handle));
  nic::TxRequest request;
  request.frame = view.bytes;
  request.wire_length = view.wire_len;
  request.seq = view.seq;
  request.on_complete = [this, key] { deref(key); };
  if (!out_nic.transmit(tx_queue, std::move(request))) {
    deref(key);  // TX ring full: packet dropped, buffer released
    return false;
  }
  return true;
}

void WirecapEngine::set_data_callback(std::uint32_t queue,
                                      std::function<void()> fn) {
  queues_.at(queue).data_callback = std::move(fn);
}

engines::EngineQueueStats WirecapEngine::queue_stats(
    std::uint32_t queue) const {
  engines::EngineQueueStats stats = queues_.at(queue).stats;
  if (queues_[queue].driver) {
    stats.copies += queues_[queue].driver->stats().packets_copied;
  }
  return stats;
}

const driver::WirecapDriverStats& WirecapEngine::driver_stats(
    std::uint32_t queue) const {
  return queues_.at(queue).driver->stats();
}

const WirecapQueueExtraStats& WirecapEngine::extra_stats(
    std::uint32_t queue) const {
  return queues_.at(queue).extra;
}

const driver::RingBufferPool& WirecapEngine::pool(std::uint32_t queue) const {
  return queues_.at(queue).driver->pool();
}

double WirecapEngine::capture_core_utilization(std::uint32_t queue) const {
  const QueueState& qs = queues_.at(queue);
  return qs.capture_core ? qs.capture_core->utilization() : 0.0;
}

void WirecapEngine::bind_telemetry(telemetry::Telemetry& telemetry,
                                   const std::string& prefix,
                                   std::uint32_t num_queues) {
  engines::CaptureEngine::bind_telemetry(telemetry, prefix, num_queues);
  auto clock = [this] { return scheduler_.now(); };
  for (std::uint32_t q = 0; q < num_queues && q < queues_.size(); ++q) {
    QueueState& qs = queues_[q];
    if (!qs.open) continue;
    const std::string qp = prefix + ".q" + std::to_string(q) + ".";
    telemetry.registry.bind_gauge(qp + "capture_queue.depth", [&qs] {
      return static_cast<double>(qs.capture_queue->size());
    });
    telemetry.registry.bind_gauge(qp + "pending.depth", [&qs] {
      return static_cast<double>(qs.pending.size());
    });
    telemetry.registry.bind_gauge(qp + "pool.free_chunks", [&qs] {
      return static_cast<double>(qs.driver->pool().free_chunks());
    });
    telemetry.registry.bind_gauge(qp + "capture_core.utilization", [&qs] {
      return qs.capture_core ? qs.capture_core->utilization() : 0.0;
    });
    telemetry.registry.bind_counter(qp + "capture_queue.high_water", [&qs] {
      return qs.extra.capture_queue_high_water;
    });
    telemetry.registry.bind_counter(qp + "pending.high_water", [&qs] {
      return qs.extra.pending_high_water;
    });
    telemetry.registry.bind_counter(qp + "polls",
                                    [&qs] { return qs.extra.polls; });
    const driver::WirecapDriverStats& ds = qs.driver->stats();
    telemetry.registry.bind_counter(qp + "driver.chunks_captured",
                                    [&ds] { return ds.chunks_captured; });
    telemetry.registry.bind_counter(qp + "driver.partial_rescues",
                                    [&ds] { return ds.partial_rescues; });
    telemetry.registry.bind_counter(qp + "driver.packets_copied",
                                    [&ds] { return ds.packets_copied; });
    telemetry.registry.bind_counter(qp + "driver.packets_captured",
                                    [&ds] { return ds.packets_captured; });
    telemetry.registry.bind_counter(qp + "driver.chunks_recycled",
                                    [&ds] { return ds.chunks_recycled; });
    telemetry.registry.bind_counter(qp + "driver.recycle_rejects",
                                    [&ds] { return ds.recycle_rejects; });
    telemetry.registry.bind_counter(qp + "driver.attach_failures",
                                    [&ds] { return ds.attach_failures; });
    qs.driver->set_tracer(&telemetry.tracer, clock);
  }
  telemetry.probes.push_back([this](Nanos now) { sample_depths(now); });
}

void WirecapEngine::sample_depths(Nanos /*now*/) {
  for (QueueState& qs : queues_) {
    if (!qs.open) continue;
    qs.extra.capture_queue_high_water =
        std::max(qs.extra.capture_queue_high_water,
                 static_cast<std::uint64_t>(qs.capture_queue->size()));
    qs.extra.pending_high_water = std::max(
        qs.extra.pending_high_water,
        static_cast<std::uint64_t>(qs.pending.size()));
  }
}

std::uint64_t WirecapEngine::total_pool_bytes() const {
  std::uint64_t total = 0;
  for (const auto& qs : queues_) {
    if (qs.driver) total += qs.driver->pool().memory_bytes();
  }
  return total;
}

}  // namespace wirecap::core
