// Implementation of the engines::make_engine registry (see
// engines/factory.hpp for why it lives in wirecap_core): the built-in
// entries span every engine layer, topped by core::WirecapEngine.
#include "engines/factory.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "core/wirecap_engine.hpp"
#include "engines/baselines.hpp"
#include "engines/dpdk_engine.hpp"

namespace wirecap::engines {

namespace {

// Policy/handoff arrive as enums: strings are converted once at the
// CLI boundary (parse_offload_policy / parse_handoff_mode in
// common/handoff.hpp, which throw listing the allowed sets).
std::unique_ptr<CaptureEngine> make_wirecap(nic::MultiQueueNic& nic,
                                            const EngineConfig& config,
                                            bool advanced) {
  core::WirecapConfig wirecap_config;
  wirecap_config.cells_per_chunk = config.cells_per_chunk;
  wirecap_config.chunk_count = config.chunk_count;
  wirecap_config.offload_policy = config.offload_policy;
  wirecap_config.handoff = config.handoff;
  wirecap_config.nic_numa_node = config.nic_numa_node;
  wirecap_config.queue_numa_node = config.queue_numa_node;
  if (advanced) {
    wirecap_config.offload_threshold = config.offload_threshold;
  }
  return std::make_unique<core::WirecapEngine>(nic.scheduler(), nic,
                                               wirecap_config, config.costs);
}

std::unique_ptr<CaptureEngine> make_dpdk(nic::MultiQueueNic& nic,
                                         const EngineConfig& config,
                                         bool app_offload) {
  DpdkConfig dpdk_config;
  // Match the WireCAP pool under comparison: mempool == R * M.
  dpdk_config.mempool_size = config.cells_per_chunk * config.chunk_count;
  dpdk_config.app_offload = app_offload;
  dpdk_config.app_offload_threshold = config.offload_threshold;
  return std::make_unique<DpdkEngine>(nic.scheduler(), nic, dpdk_config);
}

// Function-local registry in the one TU that defines every factory
// entry point: no static-initialization-order or dead-stripping games.
std::map<std::string, EngineFactoryFn>& registry() {
  static std::map<std::string, EngineFactoryFn> entries = [] {
    std::map<std::string, EngineFactoryFn> builtin;
    builtin["PF_RING"] = [](nic::MultiQueueNic& nic,
                            const EngineConfig& config) {
      PfRingConfig pfring_config;
      pfring_config.kernel_cost_per_packet = config.costs.pfring_kernel_cost;
      pfring_config.napi_wakeup_delay = config.costs.napi_wakeup_delay;
      return std::make_unique<PfRingEngine>(nic.scheduler(), nic,
                                            pfring_config);
    };
    builtin["DNA"] = [](nic::MultiQueueNic& nic, const EngineConfig&) {
      return std::make_unique<Type2Engine>(nic, dna_config());
    };
    builtin["NETMAP"] = [](nic::MultiQueueNic& nic, const EngineConfig&) {
      return std::make_unique<Type2Engine>(nic, netmap_config());
    };
    builtin["PSIOE"] = [](nic::MultiQueueNic& nic, const EngineConfig&) {
      return std::make_unique<PsioeEngine>(nic, PsioeConfig{});
    };
    builtin["DPDK"] = [](nic::MultiQueueNic& nic, const EngineConfig& config) {
      return make_dpdk(nic, config, /*app_offload=*/false);
    };
    builtin["DPDK+app-offload"] = [](nic::MultiQueueNic& nic,
                                     const EngineConfig& config) {
      return make_dpdk(nic, config, /*app_offload=*/true);
    };
    builtin["WireCAP-B"] = [](nic::MultiQueueNic& nic,
                              const EngineConfig& config) {
      return make_wirecap(nic, config, /*advanced=*/false);
    };
    builtin["WireCAP-A"] = [](nic::MultiQueueNic& nic,
                              const EngineConfig& config) {
      return make_wirecap(nic, config, /*advanced=*/true);
    };
    return builtin;
  }();
  return entries;
}

}  // namespace

std::unique_ptr<CaptureEngine> make_engine(std::string_view name,
                                           nic::MultiQueueNic& nic,
                                           const EngineConfig& config) {
  auto& entries = registry();
  const auto it = entries.find(std::string(name));
  if (it == entries.end()) {
    std::string known;
    for (const auto& [entry_name, fn] : entries) {
      if (!known.empty()) known += ", ";
      known += entry_name;
    }
    throw std::invalid_argument("make_engine: unknown engine \"" +
                                std::string(name) + "\" (registered: " +
                                known + ")");
  }
  return it->second(nic, config);
}

void register_engine(std::string name, EngineFactoryFn factory) {
  registry()[std::move(name)] = std::move(factory);
}

std::vector<std::string> registered_engines() {
  std::vector<std::string> names;
  for (const auto& [name, fn] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

}  // namespace wirecap::engines
