// A traffic source that replays a .pcap / .pcapng file "at the speed
// exactly as recorded" — the paper's replay methodology applied to real
// capture files.  Timestamps are rebased so the first packet departs at
// `start`; an optional `speedup` compresses or stretches the recording.
#pragma once

#include <filesystem>
#include <memory>

#include "trace/source.hpp"

namespace wirecap::trace {

struct PcapReplayConfig {
  std::filesystem::path path;
  /// Departure time of the first packet.
  Nanos start = Nanos::zero();
  /// 2.0 replays twice as fast; 0.5 at half speed.
  double speedup = 1.0;
  /// Replay the file this many times back to back (gaps between loops
  /// equal the file's mean inter-packet gap).
  unsigned loops = 1;
};

/// Loads the file eagerly (so replay cost is predictable) and serves it
/// as a TrafficSource.  Detects pcap vs pcapng by content.  Throws
/// std::runtime_error on unreadable/corrupt files.
[[nodiscard]] std::unique_ptr<TrafficSource> make_pcap_replay_source(
    const PcapReplayConfig& config);

}  // namespace wirecap::trace
