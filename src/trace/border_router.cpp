#include "trace/border_router.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/flow_gen.hpp"

namespace wirecap::trace {

namespace {

/// One packet-emitting process: a flow with an ON/OFF burst structure.
struct Emitter {
  net::FlowKey flow;
  Nanos active_from{};
  Nanos active_until{};
  double rate = 0.0;           // mean packets/s while active
  double burst_mean = 8.0;     // mean packets per burst
  Nanos intra_burst_gap{};     // spacing within a burst
  bool fixed_size_burst = false;  // episodes emit a fixed count
  bool uniform_burst = false;  // flights sized U[0.7B, 1.3B] (less tail
                               // variance than geometric)

  // runtime state
  Nanos next_at{};
  std::uint64_t remaining_in_burst = 0;
  Xoshiro256 rng{0};
};

class BorderRouterSource final : public TrafficSource {
 public:
  explicit BorderRouterSource(const BorderRouterConfig& config)
      : config_(config), rng_(config.seed) {
    if (config.num_queues == 0) {
      throw std::invalid_argument("BorderRouterSource: need >= 1 queue");
    }
    if (config.hot_queue >= config.num_queues ||
        config.bursty_queue >= config.num_queues) {
      throw std::invalid_argument(
          "BorderRouterSource: hot/bursty queue out of range");
    }
    build_emitters();
    for (std::size_t i = 0; i < emitters_.size(); ++i) prime(i);
  }

  std::optional<net::WirePacket> next() override {
    const Nanos end = Nanos::from_seconds(config_.duration_s);
    const auto max_packets = static_cast<std::uint64_t>(
        static_cast<double>(config_.max_packets) * config_.scale);
    while (!heap_.empty()) {
      if (emitted_ >= max_packets) return std::nullopt;
      const auto [when, index] = heap_.top();
      heap_.pop();
      Emitter& e = emitters_[index];
      if (when >= end || when >= e.active_until) continue;  // emitter retires
      net::WirePacket packet = net::WirePacket::make(
          when, e.flow, sample_frame_size(e.rng), emitted_,
          static_cast<std::uint16_t>(emitted_ & 0xFFFF));
      advance(e, index, when);
      ++emitted_;
      return packet;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t expected_packets() const override {
    return 0;  // emergent from the flow processes
  }

 private:
  struct HeapEntry {
    Nanos when;
    std::size_t index;
    bool operator>(const HeapEntry& other) const {
      if (when != other.when) return when > other.when;
      return index > other.index;
    }
  };

  void build_emitters() {
    const double s = config_.scale;
    const Nanos end = Nanos::from_seconds(config_.duration_s);
    const Nanos split = Nanos::from_seconds(config_.hot_phase_split_s);

    const auto add_group = [&](std::uint32_t queue, std::size_t flows,
                               double total_rate, Nanos from, Nanos until,
                               double burst_mean,
                               Nanos intra_gap = Nanos::from_micros(20)) {
      for (std::size_t i = 0; i < flows; ++i) {
        Emitter e;
        e.flow = flow_for_queue(rng_, queue, config_.num_queues,
                                config_.udp_fraction);
        e.active_from = from;
        e.active_until = until;
        e.rate = total_rate * s / static_cast<double>(flows);
        e.burst_mean = burst_mean;
        e.intra_burst_gap = intra_gap;
        e.rng = rng_.fork();
        emitters_.push_back(e);
      }
    };

    // Hot queue: a base of elephant flows for the whole trace, plus a
    // second flow group arriving at the phase split — the long-term
    // imbalance of Figure 3's queue 0.
    add_group(config_.hot_queue, 8, config_.hot_rate_early, Nanos::zero(), end,
              12.0);
    add_group(config_.hot_queue, 12,
              config_.hot_rate_late - config_.hot_rate_early, split, end, 12.0);

    // Bursty queue: a moderate *mean* rate from t = 1 s, but delivered
    // in intense line-rate bursts — the paper observes e.g. "2,724
    // packets sent to queue 3 during [3.86 s, 3.97 s]" against a
    // 1,024-descriptor ring.  The dominant flow group emits ~2,800-packet
    // flights at ~100 kp/s, the rest is smooth background.
    add_group(config_.bursty_queue, 1, config_.bursty_rate * 0.85,
              Nanos::from_seconds(1.0), end, 2800.0 * s,
              Nanos::from_micros(10));
    emitters_.back().uniform_burst = true;
    add_group(config_.bursty_queue, 4, config_.bursty_rate * 0.15,
              Nanos::from_seconds(1.0), end, 8.0);

    // Background mice on every queue.
    for (std::uint32_t q = 0; q < config_.num_queues; ++q) {
      add_group(q, 24, config_.background_rate_per_queue, Nanos::zero(), end,
                4.0);
    }

    // Short-term burst episodes on the bursty queue: ~100 ms floods like
    // the paper's "2,724 packets sent to queue 3 during [3.86 s, 3.97 s]".
    for (unsigned i = 0; i < config_.burst_episodes; ++i) {
      // Episodes land in [2, duration-2]; for very short traces fall
      // back to a clamped window (same single RNG draw either way, so
      // long traces are unchanged).
      const double u = rng_.next_double();
      const double at_s =
          config_.duration_s >= 4.5
              ? 2.0 + u * (config_.duration_s - 4.0)
              : std::min(0.2 + u * config_.duration_s,
                         std::max(config_.duration_s - 0.2, 0.0));
      const auto packets =
          static_cast<std::uint64_t>(static_cast<double>(
              rng_.next_in(1800, 3000)) * s);
      const Nanos duration = Nanos::from_millis(110);
      Emitter e;
      e.flow = flow_for_queue(rng_, config_.bursty_queue, config_.num_queues,
                              config_.udp_fraction);
      e.active_from = Nanos::from_seconds(at_s);
      e.active_until = e.active_from + duration;
      e.rate = static_cast<double>(packets) / duration.seconds();
      e.burst_mean = static_cast<double>(packets);
      e.fixed_size_burst = true;
      e.intra_burst_gap = Nanos{duration.count() /
                                static_cast<std::int64_t>(
                                    std::max<std::uint64_t>(packets, 1))};
      e.rng = rng_.fork();
      emitters_.push_back(e);
    }
  }

  /// Schedules an emitter's first packet.
  void prime(std::size_t index) {
    Emitter& e = emitters_[index];
    if (e.rate <= 0.0) return;
    e.remaining_in_burst = draw_burst(e);
    // Random phase so flows do not synchronize.
    const double phase = e.rng.next_exponential(1.0 / e.rate);
    e.next_at = e.active_from + Nanos::from_seconds(phase);
    heap_.push({e.next_at, index});
  }

  std::uint64_t draw_burst(Emitter& e) {
    if (e.fixed_size_burst) {
      return static_cast<std::uint64_t>(e.burst_mean);
    }
    if (e.uniform_burst) {
      const double factor = 0.7 + 0.6 * e.rng.next_double();
      return std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(e.burst_mean * factor));
    }
    // Geometric with the given mean, at least 1.
    const double u = e.rng.next_double();
    const double p = 1.0 / e.burst_mean;
    const auto k = static_cast<std::uint64_t>(std::log(1.0 - u) /
                                              std::log(1.0 - p));
    return 1 + k;
  }

  void advance(Emitter& e, std::size_t index, Nanos emitted_at) {
    if (e.remaining_in_burst > 1) {
      --e.remaining_in_burst;
      // Jittered intra-burst spacing.
      const double jitter = 0.8 + 0.4 * e.rng.next_double();
      e.next_at = emitted_at +
                  Nanos{static_cast<std::int64_t>(
                      static_cast<double>(e.intra_burst_gap.count()) * jitter)};
    } else {
      const std::uint64_t burst = draw_burst(e);
      e.remaining_in_burst = burst;
      // The OFF gap restores the configured mean rate: a burst of B
      // packets occupies ~B/rate seconds of budget.
      const double cycle_s = static_cast<double>(burst) / e.rate;
      const double on_s =
          static_cast<double>(burst) * e.intra_burst_gap.seconds();
      const double gap_mean = std::max(cycle_s - on_s, 1e-6);
      e.next_at = emitted_at + Nanos::from_seconds(
                                   e.rng.next_exponential(gap_mean));
    }
    if (e.next_at < e.active_until) heap_.push({e.next_at, index});
  }

  BorderRouterConfig config_;
  Xoshiro256 rng_;
  std::vector<Emitter> emitters_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::uint64_t emitted_ = 0;
};

}  // namespace

std::unique_ptr<TrafficSource> make_border_router_source(
    const BorderRouterConfig& config) {
  return std::make_unique<BorderRouterSource>(config);
}

}  // namespace wirecap::trace
