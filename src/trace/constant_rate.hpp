// Constant-rate traffic: "the traffic generator transmits P 64-byte
// packets at the wire rate (14.88 million p/s)" — the workload of
// Figures 8-10 and 14.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/flow.hpp"
#include "trace/source.hpp"

namespace wirecap::trace {

struct ConstantRateConfig {
  /// Number of packets to emit.
  std::uint64_t packet_count = 1000;

  /// Frame size in bytes (incl. FCS); 64 for minimum-size frames.
  std::uint32_t frame_bytes = 64;

  /// Link speed; packets are spaced at the exact wire rate for
  /// frame_bytes on this link.
  double link_bits_per_second = 10e9;

  /// Flows to cycle through round-robin.  One flow keeps all packets on
  /// one receive queue (the single-queue experiments); several flows
  /// chosen per-queue spread the load.  Must be non-empty.
  std::vector<net::FlowKey> flows;

  /// Emission start time.
  Nanos start = Nanos::zero();
};

class ConstantRateSource final : public TrafficSource {
 public:
  explicit ConstantRateSource(ConstantRateConfig config);

  std::optional<net::WirePacket> next() override;

  [[nodiscard]] std::uint64_t expected_packets() const override {
    return config_.packet_count;
  }

  [[nodiscard]] Rate rate() const { return rate_; }

 private:
  ConstantRateConfig config_;
  Rate rate_;
  std::uint64_t emitted_ = 0;
};

}  // namespace wirecap::trace
