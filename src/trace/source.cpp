#include "trace/source.hpp"

namespace wirecap::trace {

namespace {

class ReplaySource final : public TrafficSource {
 public:
  explicit ReplaySource(const std::vector<net::WirePacket>& packets)
      : packets_(packets) {}

  std::optional<net::WirePacket> next() override {
    if (index_ >= packets_.size()) return std::nullopt;
    return packets_[index_++];
  }

  [[nodiscard]] std::uint64_t expected_packets() const override {
    return packets_.size();
  }

 private:
  const std::vector<net::WirePacket>& packets_;
  std::size_t index_ = 0;
};

}  // namespace

RecordedTrace RecordedTrace::record(TrafficSource& source) {
  std::vector<net::WirePacket> packets;
  if (const auto expected = source.expected_packets(); expected > 0) {
    packets.reserve(expected);
  }
  while (auto packet = source.next()) packets.push_back(std::move(*packet));
  return RecordedTrace{std::move(packets)};
}

std::unique_ptr<TrafficSource> RecordedTrace::replay() const {
  return std::make_unique<ReplaySource>(packets_);
}

}  // namespace wirecap::trace
