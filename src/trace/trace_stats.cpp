#include "trace/trace_stats.hpp"

#include <unordered_set>

#include "net/rss.hpp"

namespace wirecap::trace {

TraceStats analyze(TrafficSource& source, std::uint32_t num_queues,
                   Nanos bin_width) {
  TraceStats stats;
  stats.per_queue.reserve(num_queues);
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    stats.per_queue.emplace_back(bin_width);
  }
  stats.queue_totals.assign(num_queues, 0);

  std::unordered_set<net::FlowKey> flows;
  bool first = true;
  while (auto packet = source.next()) {
    if (first) {
      stats.first_timestamp = packet->timestamp();
      first = false;
    }
    stats.last_timestamp = packet->timestamp();
    ++stats.total_packets;
    stats.total_bytes += packet->wire_len();
    const std::uint32_t queue = net::rss_queue(packet->flow(), num_queues);
    stats.per_queue[queue].record(packet->timestamp());
    ++stats.queue_totals[queue];
    flows.insert(packet->flow());
  }
  stats.flow_count = flows.size();
  return stats;
}

}  // namespace wirecap::trace
