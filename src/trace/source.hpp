// Traffic sources: pull-based streams of timestamped packets.
//
// Sources are deterministic functions of their configuration (including
// the seed), so "replaying the captured data at the speed exactly as
// recorded" — the paper's methodology — is done by constructing an
// identical source for every engine under test.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace wirecap::trace {

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Next packet in timestamp order, or nullopt when the source is
  /// exhausted.  Timestamps are non-decreasing.
  virtual std::optional<net::WirePacket> next() = 0;

  /// Total packets this source will emit, when known in advance (used
  /// for drop-rate denominators); 0 if unknown.
  [[nodiscard]] virtual std::uint64_t expected_packets() const { return 0; }
};

/// An in-memory recorded trace, replayable any number of times.
class RecordedTrace {
 public:
  RecordedTrace() = default;
  explicit RecordedTrace(std::vector<net::WirePacket> packets)
      : packets_(std::move(packets)) {}

  /// Records everything `source` emits.
  static RecordedTrace record(TrafficSource& source);

  [[nodiscard]] const std::vector<net::WirePacket>& packets() const {
    return packets_;
  }
  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  [[nodiscard]] bool empty() const { return packets_.empty(); }

  /// A source replaying this trace "at the speed exactly as recorded".
  [[nodiscard]] std::unique_ptr<TrafficSource> replay() const;

 private:
  std::vector<net::WirePacket> packets_;
};

}  // namespace wirecap::trace
