#include "trace/constant_rate.hpp"

#include <stdexcept>

namespace wirecap::trace {

ConstantRateSource::ConstantRateSource(ConstantRateConfig config)
    : config_(std::move(config)),
      rate_(ethernet::wire_rate(config_.link_bits_per_second,
                                config_.frame_bytes)) {
  if (config_.flows.empty()) {
    throw std::invalid_argument("ConstantRateSource: need at least one flow");
  }
}

std::optional<net::WirePacket> ConstantRateSource::next() {
  if (emitted_ >= config_.packet_count) return std::nullopt;
  // Integer arithmetic on the cumulative schedule avoids drift: packet i
  // departs at start + i / rate.
  const double interval_ns = 1e9 / rate_.per_second();
  const Nanos when =
      config_.start + Nanos{static_cast<std::int64_t>(
                          static_cast<double>(emitted_) * interval_ns)};
  const net::FlowKey& flow = config_.flows[emitted_ % config_.flows.size()];
  net::WirePacket packet = net::WirePacket::make(
      when, flow, config_.frame_bytes, emitted_,
      static_cast<std::uint16_t>(emitted_ & 0xFFFF));
  ++emitted_;
  return packet;
}

}  // namespace wirecap::trace
