// Offline trace statistics: per-queue binned arrival series and flow
// accounting, computed by steering each packet through the real RSS
// hash.  queue_profiler-style analysis without the capture stack.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "net/flow.hpp"
#include "trace/source.hpp"

namespace wirecap::trace {

struct TraceStats {
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  Nanos first_timestamp{};
  Nanos last_timestamp{};
  /// Arrival series per receive queue (RSS-steered), binned at bin_width.
  std::vector<BinnedSeries> per_queue;
  /// Packets per queue.
  std::vector<std::uint64_t> queue_totals;
  /// Distinct flows observed.
  std::uint64_t flow_count = 0;

  [[nodiscard]] double duration_s() const {
    return (last_timestamp - first_timestamp).seconds();
  }
  [[nodiscard]] double mean_rate() const {
    const double d = duration_s();
    return d > 0 ? static_cast<double>(total_packets) / d : 0.0;
  }
};

/// Drains `source` and computes statistics as if the NIC had
/// `num_queues` RSS queues.
[[nodiscard]] TraceStats analyze(TrafficSource& source,
                                 std::uint32_t num_queues,
                                 Nanos bin_width = Nanos::from_millis(10));

}  // namespace wirecap::trace
