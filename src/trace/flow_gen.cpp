#include "trace/flow_gen.hpp"

#include <array>

#include "net/rss.hpp"

namespace wirecap::trace {

namespace {

// Source prefixes seen at the simulated border router.  131.225.0.0/16
// is Fermilab's own block; the paper's experiment filter selects
// "131.225.2 and udp".
constexpr std::array<net::Ipv4Addr, 6> kSrcNets = {
    net::Ipv4Addr{131, 225, 2, 0},  net::Ipv4Addr{131, 225, 107, 0},
    net::Ipv4Addr{192, 5, 40, 0},   net::Ipv4Addr{128, 227, 56, 0},
    net::Ipv4Addr{141, 142, 20, 0}, net::Ipv4Addr{198, 32, 44, 0},
};
constexpr std::array<net::Ipv4Addr, 4> kDstNets = {
    net::Ipv4Addr{131, 225, 70, 0}, net::Ipv4Addr{131, 225, 2, 0},
    net::Ipv4Addr{144, 92, 181, 0}, net::Ipv4Addr{134, 79, 16, 0},
};
constexpr std::array<std::uint16_t, 6> kServicePorts = {80, 443, 22,
                                                        2811, 8443, 1094};

}  // namespace

net::FlowKey random_flow(Xoshiro256& rng, double udp_fraction) {
  net::FlowKey flow;
  const auto src_net = kSrcNets[rng.next_below(kSrcNets.size())];
  const auto dst_net = kDstNets[rng.next_below(kDstNets.size())];
  flow.src_ip = net::Ipv4Addr{static_cast<std::uint32_t>(
      src_net.value() | rng.next_in(1, 254))};
  flow.dst_ip = net::Ipv4Addr{static_cast<std::uint32_t>(
      dst_net.value() | rng.next_in(1, 254))};
  flow.proto = rng.next_bool(udp_fraction) ? net::IpProto::kUdp
                                           : net::IpProto::kTcp;
  flow.src_port = static_cast<std::uint16_t>(rng.next_in(32768, 60999));
  flow.dst_port = kServicePorts[rng.next_below(kServicePorts.size())];
  return flow;
}

net::FlowKey flow_for_queue(Xoshiro256& rng, std::uint32_t queue,
                            std::uint32_t num_queues, double udp_fraction) {
  while (true) {
    const net::FlowKey flow = random_flow(rng, udp_fraction);
    if (net::rss_queue(flow, num_queues) == queue) return flow;
  }
}

std::vector<net::FlowKey> flows_for_queue(Xoshiro256& rng, std::uint32_t queue,
                                          std::uint32_t num_queues,
                                          std::size_t count,
                                          double udp_fraction) {
  std::vector<net::FlowKey> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flows.push_back(flow_for_queue(rng, queue, num_queues, udp_fraction));
  }
  return flows;
}

std::uint32_t sample_frame_size(Xoshiro256& rng) {
  const double u = rng.next_double();
  if (u < 0.50) return static_cast<std::uint32_t>(rng.next_in(64, 100));
  if (u < 0.60) return static_cast<std::uint32_t>(rng.next_in(260, 640));
  return static_cast<std::uint32_t>(rng.next_in(1400, 1518));
}

}  // namespace wirecap::trace
