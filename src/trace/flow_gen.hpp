// Flow synthesis utilities, RSS-aware.
//
// The paper's long-term load imbalance arises from "an uneven
// distribution of flow groups in the NIC": per-flow steering pins each
// flow to the queue its Toeplitz hash selects, and flow *groups* (sets of
// flows sharing a queue) carry very different loads.  To reproduce a
// specific imbalance shape we synthesize flows and *select* them by the
// queue the real RSS hash assigns them to — the steering itself is never
// faked.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/flow.hpp"

namespace wirecap::trace {

/// Generates a random plausible border-router flow: TCP or UDP, source
/// in one of a handful of /24s (including the paper's 131.225.2.0/24),
/// ephemeral ports.
[[nodiscard]] net::FlowKey random_flow(Xoshiro256& rng,
                                       double udp_fraction = 0.15);

/// Generates a flow that the default RSS configuration steers to
/// `queue` out of `num_queues` (rejection-samples random flows through
/// the real Toeplitz hash; expected num_queues tries).
[[nodiscard]] net::FlowKey flow_for_queue(Xoshiro256& rng, std::uint32_t queue,
                                          std::uint32_t num_queues,
                                          double udp_fraction = 0.15);

/// Generates `count` distinct flows steered to `queue`.
[[nodiscard]] std::vector<net::FlowKey> flows_for_queue(
    Xoshiro256& rng, std::uint32_t queue, std::uint32_t num_queues,
    std::size_t count, double udp_fraction = 0.15);

/// Samples a realistic frame size (bytes incl. FCS): the classic
/// trimodal internet mix — ~50% minimum-size, ~10% mid, ~40% MTU-size.
[[nodiscard]] std::uint32_t sample_frame_size(Xoshiro256& rng);

}  // namespace wirecap::trace
