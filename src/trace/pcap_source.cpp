#include "trace/pcap_source.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "net/pcapfile.hpp"
#include "net/pcapng.hpp"

namespace wirecap::trace {

namespace {

[[nodiscard]] bool file_is_pcapng(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::uint32_t magic = 0;
  if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic))) return false;
  return magic == net::kPcapngShbType;
}

class PcapReplaySource final : public TrafficSource {
 public:
  explicit PcapReplaySource(const PcapReplayConfig& config)
      : config_(config) {
    if (config.speedup <= 0.0) {
      throw std::invalid_argument("PcapReplaySource: speedup must be > 0");
    }
    if (config.loops == 0) {
      throw std::invalid_argument("PcapReplaySource: loops must be >= 1");
    }
    if (file_is_pcapng(config.path)) {
      net::PcapngReader reader{config.path};
      while (auto record = reader.next()) {
        records_.push_back(net::PcapRecord{record->timestamp,
                                           record->orig_len,
                                           std::move(record->data)});
      }
    } else {
      net::PcapReader reader{config.path};
      records_ = reader.read_all();
    }
    if (records_.empty()) {
      throw std::runtime_error("PcapReplaySource: file has no packets");
    }
    base_ = records_.front().timestamp;
    span_ = records_.back().timestamp - base_;
    // Loop gap: the mean inter-packet gap of the recording.
    loop_gap_ = records_.size() > 1
                    ? Nanos{span_.count() /
                            static_cast<std::int64_t>(records_.size() - 1)}
                    : Nanos::from_micros(1);
  }

  std::optional<net::WirePacket> next() override {
    if (loop_ >= config_.loops) return std::nullopt;
    const net::PcapRecord& record = records_[index_];
    const Nanos offset{static_cast<std::int64_t>(
        static_cast<double>((record.timestamp - base_).count()) /
        config_.speedup)};
    const Nanos loop_base{static_cast<std::int64_t>(
        static_cast<double>(loop_) *
        (static_cast<double>((span_ + loop_gap_).count()) /
         config_.speedup))};
    const Nanos when = config_.start + loop_base + offset;

    const auto wire_len = std::max<std::uint32_t>(
        record.orig_len, static_cast<std::uint32_t>(record.data.size()));
    net::WirePacket packet =
        net::WirePacket::from_bytes(when, record.data, wire_len, seq_);
    ++seq_;
    if (++index_ >= records_.size()) {
      index_ = 0;
      ++loop_;
    }
    return packet;
  }

  [[nodiscard]] std::uint64_t expected_packets() const override {
    return records_.size() * config_.loops;
  }

 private:
  PcapReplayConfig config_;
  std::vector<net::PcapRecord> records_;
  Nanos base_{};
  Nanos span_{};
  Nanos loop_gap_{};
  std::size_t index_ = 0;
  unsigned loop_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace

std::unique_ptr<TrafficSource> make_pcap_replay_source(
    const PcapReplayConfig& config) {
  return std::make_unique<PcapReplaySource>(config);
}

}  // namespace wirecap::trace
