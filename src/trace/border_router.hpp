// Synthetic border-router traffic.
//
// The paper's experiment data is a 5-million-packet, ~32 s capture from
// the Fermilab border router, replayed "at the speed exactly as
// recorded".  That trace is not public; this generator reproduces its
// *statistical shape* as documented in the paper (Figure 3 and §2.2):
//
//   * per-flow RSS steering concentrates flow groups unevenly: with six
//     receive queues, queue 0 carries a sustained ~80 kp/s from t=10 s
//     on (long-term imbalance) while queue 3 averages ~20 kp/s;
//   * traffic is bursty at the 100-500 ms scale: queue 3 sees episodes
//     like "2,724 packets in [3.86 s, 3.97 s]" (short-term imbalance);
//   * TCP dominates, with a tail of UDP flows; packet sizes follow the
//     familiar trimodal mix.
//
// All flows are real 5-tuples chosen so that the *genuine* Toeplitz RSS
// hash places them on the intended queue; nothing about the steering is
// faked.  The generator is a deterministic function of the seed.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "trace/source.hpp"

namespace wirecap::trace {

struct BorderRouterConfig {
  std::uint64_t seed = 0xF3E41AB;

  /// Trace duration; the paper's capture "lasts for approximately 32 s".
  double duration_s = 32.0;

  /// Hard cap on emitted packets (the paper's trace has 5 M).
  std::uint64_t max_packets = 5'000'000;

  /// Number of receive queues the flow groups are engineered against
  /// (the experiment configures the NIC with the same number).
  std::uint32_t num_queues = 6;

  /// Queue carrying the long-term overload (paper: queue 0).
  std::uint32_t hot_queue = 0;

  /// Queue carrying short-term bursts (paper: queue 3).
  std::uint32_t bursty_queue = 3;

  /// Hot-queue aggregate rate before/after the phase split.
  double hot_rate_early = 25e3;
  double hot_rate_late = 80e3;
  double hot_phase_split_s = 10.0;

  /// Bursty-queue mean aggregate rate (active from t = 1 s).
  double bursty_rate = 20e3;

  /// Background rate steered to *each* queue by many small flows.
  double background_rate_per_queue = 9e3;

  /// Number of deliberate short-term burst episodes on bursty_queue.
  unsigned burst_episodes = 6;

  /// Fraction of flows that are UDP (rest TCP).
  double udp_fraction = 0.15;

  /// Scales every rate and max_packets together: scale=0.1 produces a
  /// 10x shorter-to-simulate trace with the same imbalance shape.
  double scale = 1.0;
};

/// Creates the generator.  The returned source emits packets in
/// timestamp order and can be re-created (same config) for an identical
/// replay.
[[nodiscard]] std::unique_ptr<TrafficSource> make_border_router_source(
    const BorderRouterConfig& config);

}  // namespace wirecap::trace
