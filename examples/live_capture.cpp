// Live capture on real threads — no simulation clock.
//
// The userspace half of WireCAP is ordinary concurrent code, and this
// example runs it as such: a capture thread owns a ring buffer pool,
// fills chunks with real frames from the traffic generator, and hands
// them to an application thread through a work-queue pair (capture
// queue + recycle queue), exactly the §3.2.2 architecture:
//
//   capture thread:  fill chunk -> push metadata -> recycle used chunks
//   app thread:      pop metadata -> BPF over every cell -> push back
//
// Ownership discipline makes the pool safe without locks on the data
// path: pool state transitions happen only on the capture thread; the
// application touches only the cells of chunks it holds metadata for.
// The demo measures real throughput of the zero-copy handoff.
//
// Flags:
//   --spool-dir=DIR   the application thread additionally spools every
//                     delivered packet into rotating indexed pcapng
//                     segments under DIR (store::SegmentWriter performs
//                     real file I/O — no simulation dependency)
//   --read-spool=DIR  skip capture; k-way-merge a spool directory back
//                     into timestamp order and print a summary
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"
#include "common/mpmc_queue.hpp"
#include "driver/chunk_pool.hpp"
#include "engines/packet_view.hpp"
#include "net/headers.hpp"
#include "store/reader.hpp"
#include "store/spool.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

using namespace wirecap;

namespace {

int read_spool(const std::string& dir) {
  store::StoreReader reader{dir};
  std::uint64_t packets = 0, bytes = 0;
  Nanos first{}, last{};
  reader.read_merged({}, [&](const net::PcapngRecord& record, std::uint32_t) {
    if (packets == 0) first = record.timestamp;
    last = record.timestamp;
    ++packets;
    bytes += record.orig_len;
  });
  std::printf("%s: %zu segment(s), %llu packets (%llu bytes) merged in "
              "timestamp order, spanning %.3f s\n",
              dir.c_str(), reader.segments().size(),
              static_cast<unsigned long long>(packets),
              static_cast<unsigned long long>(bytes),
              packets ? (last - first).seconds() : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spool_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--spool-dir=", 0) == 0) spool_dir = arg.substr(12);
    if (arg.rfind("--read-spool=", 0) == 0) {
      try {
        return read_spool(arg.substr(13));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
      }
    }
  }

  constexpr std::uint32_t kCellsPerChunk = 256;  // M
  constexpr std::uint32_t kChunks = 64;          // R
  // Spooling does real file I/O per packet: keep the demo's disk
  // footprint reasonable.
  const std::uint64_t kPackets = spool_dir.empty() ? 4'000'000 : 200'000;

  std::printf("live capture on real threads: %llu packets through a "
              "%u x %u ring buffer pool\n",
              static_cast<unsigned long long>(kPackets), kChunks,
              kCellsPerChunk);

  driver::RingBufferPool pool{/*nic=*/0, /*ring=*/0, kCellsPerChunk, kChunks};
  MpmcQueue<driver::ChunkMeta> capture_queue{kChunks};
  MpmcQueue<driver::ChunkMeta> recycle_queue{kChunks};

  const auto wall_start = std::chrono::steady_clock::now();

  // --- capture thread: the "kernel + capture thread" side ---
  std::thread capture_thread([&] {
    trace::ConstantRateConfig config;
    config.packet_count = kPackets;
    Xoshiro256 rng{0x11FE};
    config.flows = {trace::flow_for_queue(rng, 0, 1),
                    net::FlowKey{net::Ipv4Addr{131, 225, 2, 40},
                                 net::Ipv4Addr{10, 3, 2, 1}, 888, 53,
                                 net::IpProto::kUdp}};
    trace::ConstantRateSource source{config};

    std::uint64_t filled = 0;
    while (filled < kPackets) {
      // Recycle everything the app returned.
      while (auto meta = recycle_queue.try_pop()) {
        if (!pool.recycle(*meta).is_ok()) {
          std::fprintf(stderr, "recycle failed!\n");
          return;
        }
      }
      auto chunk = pool.capture_free_chunk(
          static_cast<std::uint32_t>(std::min<std::uint64_t>(
              kCellsPerChunk, kPackets - filled)));
      if (!chunk) {
        // Pool exhausted: the app is behind.  A real driver would let
        // the ring absorb the wait; here we block on the recycle queue.
        if (auto meta = recycle_queue.pop()) {
          static_cast<void>(pool.recycle(*meta));
        }
        continue;
      }
      // "DMA" the next packets into the chunk's cells.
      for (std::uint32_t cell = 0; cell < chunk->pkt_count; ++cell) {
        const auto packet = source.next();
        const auto dst = pool.cell(chunk->chunk_id, cell);
        const auto src = packet->bytes();
        std::copy(src.begin(), src.end(), dst.begin());
        driver::CellInfo& info = pool.cell_info(chunk->chunk_id, cell);
        info.length = packet->snap_len();
        info.wire_length = packet->wire_len();
        info.timestamp_ns = packet->timestamp().count();
        info.seq = packet->seq();
        ++filled;
      }
      capture_queue.push(*chunk);
    }
    capture_queue.close();
  });

  // --- application thread: BPF over every delivered packet, spooling
  // to disk when requested ---
  std::uint64_t delivered = 0, matched = 0, spooled_segments = 0;
  std::thread app_thread([&] {
    const bpf::Program filter = bpf::compile_filter("131.225.2 and udp");
    std::unique_ptr<store::SegmentWriter> writer;
    std::vector<engines::CaptureView> chunk_views;
    if (!spool_dir.empty()) {
      std::filesystem::create_directories(spool_dir);
      store::SegmentWriter::Options options;
      options.segment_max_bytes = 4u << 20;
      writer = std::make_unique<store::SegmentWriter>(spool_dir, 0, options);
      chunk_views.reserve(kCellsPerChunk);
    }
    while (auto meta = capture_queue.pop()) {
      chunk_views.clear();
      for (std::uint32_t cell = 0; cell < meta->pkt_count; ++cell) {
        const auto bytes = pool.cell(meta->chunk_id, cell);
        const driver::CellInfo& info = pool.cell_info(meta->chunk_id, cell);
        if (bpf::matches(filter, bytes.first(info.length),
                         info.wire_length)) {
          ++matched;
        }
        if (writer) {
          engines::CaptureView view;
          view.bytes = bytes.first(info.length);
          view.wire_len = info.wire_length;
          view.timestamp = Nanos{info.timestamp_ns};
          view.seq = info.seq;
          chunk_views.push_back(view);
        }
        ++delivered;
      }
      // One vectored writev commit per chunk: the gather path batches
      // the whole chunk's cells straight from the pool, no copies.
      if (writer && !chunk_views.empty()) writer->write_chunk(chunk_views);
      recycle_queue.push(*meta);
    }
    if (writer) {
      writer->finish();
      spooled_segments = writer->segments_opened();
    }
    recycle_queue.close();
  });

  capture_thread.join();
  app_thread.join();

  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  std::printf("delivered %llu packets (%llu matched the filter) in %.2f s\n",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(matched), wall);
  std::printf("real-thread throughput: %.2f Mp/s through the work-queue "
              "pair, zero data-path copies beyond the synthetic DMA\n",
              static_cast<double>(delivered) / wall / 1e6);
  if (!spool_dir.empty()) {
    std::printf("spooled %llu packets into %llu indexed pcapng segment(s) "
                "under %s\n",
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(spooled_segments),
                spool_dir.c_str());
    std::printf("read it back with: --read-spool=%s\n", spool_dir.c_str());
  }
  return delivered == kPackets ? 0 : 1;
}
