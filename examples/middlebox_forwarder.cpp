// Middlebox: capture -> inspect/modify in flight -> zero-copy forward.
//
// §3.2.2b and Figure 13: "an application can use ring buffer pools as
// its own data buffers ... and forward a captured packet by simply
// attaching it to a specific transmit queue, potentially after the
// packet has been analyzed and/or modified.  The packet itself is not
// copied."
//
// This example implements a small NAT-ish middlebox on top of the raw
// engine API: packets arrive on NIC1, matching flows get their
// destination rewritten (with a correct incremental checksum update),
// and every packet leaves through NIC2 without a single payload copy.
// The egress tap verifies the rewrite actually happened on the wire.
#include <cstdio>
#include <memory>

#include "apps/pkt_handler.hpp"
#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"
#include "engines/factory.hpp"
#include "net/bytes.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "nic/device.hpp"
#include "nic/wire.hpp"
#include "trace/constant_rate.hpp"

using namespace wirecap;

namespace {

/// Rewrites the IPv4 destination address in place and fixes the header
/// checksum incrementally (RFC 1624).
void rewrite_destination(std::span<std::byte> frame, net::Ipv4Addr new_dst) {
  auto l3 = frame.subspan(net::kEthernetHeaderLen);
  const std::uint32_t old_dst = net::read_be32(l3, 16);
  const std::uint32_t new_val = new_dst.value();
  if (old_dst == new_val) return;
  net::write_be32(l3, 16, new_val);
  // Incremental checksum: HC' = ~(~HC + ~m + m') per 16-bit field.
  std::uint32_t sum = static_cast<std::uint16_t>(~net::read_be16(l3, 10));
  sum += static_cast<std::uint16_t>(~(old_dst >> 16)) & 0xFFFF;
  sum += static_cast<std::uint16_t>(~(old_dst & 0xFFFF)) & 0xFFFF;
  sum += new_val >> 16;
  sum += new_val & 0xFFFF;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  net::write_be16(l3, 10, static_cast<std::uint16_t>(~sum & 0xFFFF));
}

}  // namespace

int main() {
  std::puts("WireCAP middlebox: inspect, rewrite, zero-copy forward");

  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};

  nic::NicConfig nic1_config;
  nic1_config.nic_id = 1;
  nic::MultiQueueNic nic1{scheduler, bus, nic1_config};
  nic::NicConfig nic2_config;
  nic2_config.nic_id = 2;
  nic::MultiQueueNic nic2{scheduler, bus, nic2_config};

  engines::EngineConfig engine_config;
  engine_config.cells_per_chunk = 128;
  engine_config.chunk_count = 160;  // 20,480-packet pool: absorbs the whole burst
  auto engine_ptr = engines::make_engine("WireCAP-B", nic1, engine_config);
  engines::CaptureEngine& engine = *engine_ptr;
  sim::SimCore middlebox_core{scheduler, 0};

  // Policy: DNS traffic to the old resolver is redirected.
  const net::Ipv4Addr old_resolver{10, 0, 0, 53};
  const net::Ipv4Addr new_resolver{10, 0, 9, 9};
  const bpf::Program redirect_filter =
      bpf::compile_filter("udp and dst host 10.0.0.53");

  // Egress tap: verify what actually leaves NIC2.
  std::uint64_t forwarded = 0, redirected_on_wire = 0, checksum_ok = 0;
  nic2.set_egress([&](const net::WirePacket& packet) {
    ++forwarded;
    const auto l3 = packet.bytes().subspan(net::kEthernetHeaderLen);
    const auto ip = net::parse_ipv4(l3);
    if (ip && ip->dst == new_resolver) ++redirected_on_wire;
    // A valid IPv4 header checksums to zero.
    if (ip && net::internet_checksum(l3.first(net::kIpv4MinHeaderLen)) == 0) {
      ++checksum_ok;
    }
  });

  // The middlebox thread: x=30 emulates moderate inspection cost; the
  // hook does the actual rewrite on the pool cell — in place, zero copy.
  const sim::CostModel costs;
  std::uint64_t redirected = 0;
  apps::PktHandlerConfig handler_config;
  handler_config.x = 30;
  handler_config.filter = "";
  handler_config.execute_filter = false;
  handler_config.forward = apps::ForwardTarget{&nic2, 0};
  apps::PktHandler middlebox{middlebox_core, engine, 0, handler_config,
                             costs};
  middlebox.set_packet_hook([&](const engines::CaptureView& view) {
    if (bpf::matches(redirect_filter, view.bytes, view.wire_len)) {
      rewrite_destination(view.bytes, new_resolver);
      ++redirected;
    }
  });

  // Traffic: a DNS flow to the old resolver interleaved with web
  // traffic, 20,000 packets at 1 Mp/s.
  trace::ConstantRateConfig traffic;
  traffic.packet_count = 20'000;
  traffic.link_bits_per_second = 1e6 * 84 * 8;
  traffic.flows = {
      net::FlowKey{net::Ipv4Addr{172, 16, 0, 5}, old_resolver, 5353, 53,
                   net::IpProto::kUdp},
      net::FlowKey{net::Ipv4Addr{172, 16, 0, 5}, net::Ipv4Addr{93, 184, 216, 34},
                   40000, 443, net::IpProto::kTcp},
  };
  trace::ConstantRateSource source{traffic};
  nic::TrafficInjector injector{scheduler, source, nic1};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(5));

  std::printf("\ningress:   %llu packets (%llu dropped at the NIC)\n",
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(nic1.total_rx_dropped()));
  std::printf("rewritten: %llu (DNS to %s redirected to %s)\n",
              static_cast<unsigned long long>(redirected),
              old_resolver.to_string().c_str(),
              new_resolver.to_string().c_str());
  std::printf("egress:    %llu packets, %llu carrying the new destination, "
              "%llu with valid checksums\n",
              static_cast<unsigned long long>(forwarded),
              static_cast<unsigned long long>(redirected_on_wire),
              static_cast<unsigned long long>(checksum_ok));
  std::printf("copies on the forwarding path: %llu (zero-copy: only "
              "burst-tail rescues)\n",
              static_cast<unsigned long long>(engine.queue_stats(0).copies));
  return 0;
}
