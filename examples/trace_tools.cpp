// trace_tools — a small CLI over the trace and pcap substrates:
//
//   trace_tools generate <out.pcap|out.pcapng> [seconds] [scale]
//       synthesize a border-router trace and write it as a standard
//       .pcap file (nanosecond magic) or, when the extension is
//       .pcapng, a pcapng file — both readable by wireshark/tcpdump
//   trace_tools inspect <in.pcap>
//       print summary statistics: packets, bytes, duration, flows,
//       size histogram, per-queue RSS split
//   trace_tools filter <in.pcap> <out.pcap> <expression>
//       copy packets matching a BPF filter expression
//   trace_tools replay <in.pcap|in.pcapng> [queues] [x] [--spool-dir=DIR]
//       replay the file through the full simulated capture stack
//       (RSS -> NIC -> WireCAP advanced mode -> pkt_handlers) and
//       report per-queue delivery and drops; with --spool-dir the
//       pkt_handlers are replaced by the capture-to-disk spool and the
//       run leaves indexed pcapng segments in DIR
//   trace_tools read-spool <dir> [expression]
//       k-way-merge a spool directory back into global timestamp order,
//       optionally filtered by a BPF expression, and print what the
//       segment indexes let the reader skip
//   trace_tools summarize-latency <trace.json>
//       fold the chunk.journey spans of a Chrome-trace dump (a
//       --trace-out file from a latency-enabled run) into a per-stage
//       latency percentile table — exact offline percentiles, no
//       histogram bucketing
//
// Run with no arguments for a self-contained demo in a temp directory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "bpf/codegen.hpp"
#include "bpf/disasm.hpp"
#include "bpf/vm.hpp"
#include "net/pcapfile.hpp"
#include "net/pcapng.hpp"
#include "net/rss.hpp"
#include "apps/harness.hpp"
#include "store/reader.hpp"
#include "store/spool.hpp"
#include "trace/border_router.hpp"
#include "trace/pcap_source.hpp"

using namespace wirecap;

namespace {

bool is_pcapng(const std::string& path) {
  return path.size() > 7 && path.substr(path.size() - 7) == ".pcapng";
}

int cmd_generate(const std::string& path, double seconds, double scale) {
  trace::BorderRouterConfig config;
  config.duration_s = seconds;
  config.scale = scale;
  auto source = trace::make_border_router_source(config);
  std::uint64_t written = 0;
  if (is_pcapng(path)) {
    net::PcapngWriter writer{path};
    while (auto packet = source->next()) writer.write(*packet);
    written = writer.records_written();
  } else {
    net::PcapWriter writer{path};
    while (auto packet = source->next()) writer.write(*packet);
    written = writer.records_written();
  }
  std::printf("wrote %llu packets to %s\n",
              static_cast<unsigned long long>(written), path.c_str());
  return 0;
}

int cmd_inspect(const std::string& path) {
  // Normalize both formats into (timestamp, orig_len, data) records.
  std::vector<net::PcapRecord> records;
  if (is_pcapng(path)) {
    net::PcapngReader reader{path};
    while (auto record = reader.next()) {
      records.push_back(net::PcapRecord{record->timestamp, record->orig_len,
                                        std::move(record->data)});
    }
    std::printf("%s: pcapng, %u interface(s), hardware '%s'\n", path.c_str(),
                reader.interfaces_seen(), reader.hardware().c_str());
  } else {
    net::PcapReader reader{path};
    std::printf("%s: linktype=%u snaplen=%u %s timestamps\n", path.c_str(),
                reader.linktype(), reader.snaplen(),
                reader.nanosecond() ? "nanosecond" : "microsecond");
    records = reader.read_all();
  }

  std::uint64_t packets = 0, bytes = 0;
  Nanos first{}, last{};
  std::unordered_set<net::FlowKey> flows;
  std::map<std::string, std::uint64_t> sizes{
      {"  <=128", 0}, {" <=1024", 0}, {">1024", 0}};
  std::array<std::uint64_t, 6> queues{};

  for (const auto& record_value : records) {
    const auto* record = &record_value;
    if (packets == 0) first = record->timestamp;
    last = record->timestamp;
    ++packets;
    bytes += record->orig_len;
    if (record->orig_len <= 128) {
      ++sizes["  <=128"];
    } else if (record->orig_len <= 1024) {
      ++sizes[" <=1024"];
    } else {
      ++sizes[">1024"];
    }
    if (const auto flow = net::parse_flow(record->data)) {
      flows.insert(*flow);
      ++queues[net::rss_queue(*flow, 6)];
    }
  }
  const double duration = (last - first).seconds();
  std::printf("packets: %llu, bytes: %llu, duration: %.2f s "
              "(%.0f p/s, %.2f Gb/s)\n",
              static_cast<unsigned long long>(packets),
              static_cast<unsigned long long>(bytes), duration,
              duration > 0 ? static_cast<double>(packets) / duration : 0.0,
              duration > 0
                  ? static_cast<double>(bytes) * 8 / duration / 1e9
                  : 0.0);
  std::printf("distinct flows: %zu\n", flows.size());
  std::printf("frame sizes:");
  for (const auto& [bucket, count] : sizes) {
    std::printf("  %s: %llu", bucket.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nRSS split over 6 queues:");
  for (const auto count : queues) {
    std::printf(" %llu", static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  return 0;
}

int cmd_filter(const std::string& in, const std::string& out,
               const std::string& expression) {
  const bpf::Program program = bpf::compile_filter(expression);
  std::printf("compiled '%s' to %zu cBPF instructions:\n%s",
              expression.c_str(), program.size(),
              bpf::disassemble(program).c_str());
  net::PcapReader reader{in};
  net::PcapWriter writer{out, reader.snaplen(), reader.nanosecond()};
  std::uint64_t total = 0, kept = 0;
  while (auto record = reader.next()) {
    ++total;
    if (bpf::matches(program, record->data, record->orig_len)) {
      writer.write(record->timestamp, record->data, record->orig_len);
      ++kept;
    }
  }
  std::printf("kept %llu of %llu packets -> %s\n",
              static_cast<unsigned long long>(kept),
              static_cast<unsigned long long>(total), out.c_str());
  return 0;
}

int cmd_replay(const std::string& path, std::uint32_t queues, unsigned x,
               const std::string& spool_dir = {}) {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.num_queues = queues;
  config.x = x;
  if (!spool_dir.empty()) {
    store::SpoolConfig spool_config;
    spool_config.dir = spool_dir;
    config.spool = spool_config;
  }
  apps::Experiment experiment{config};

  trace::PcapReplayConfig replay_config;
  replay_config.path = path;
  auto source = trace::make_pcap_replay_source(replay_config);
  const std::uint64_t expected = source->expected_packets();
  // Horizon: generous — replay span is unknown until read; use the
  // recording itself (expected at >=1 p/us would be extreme; cap 120 s).
  const auto result =
      experiment.run(*source, Nanos::from_seconds(120));

  std::printf("replayed %llu of %llu packets through WireCAP-A on %u "
              "queues (x=%u)\n",
              static_cast<unsigned long long>(result.sent),
              static_cast<unsigned long long>(expected), queues, x);
  std::printf("delivered %llu, dropped %llu (%.2f%%)\n",
              static_cast<unsigned long long>(result.delivered),
              static_cast<unsigned long long>(result.capture_dropped),
              result.drop_rate() * 100);
  for (std::uint32_t q = 0; q < queues; ++q) {
    std::printf("  q%u: arrived %llu, delivered %llu\n", q,
                static_cast<unsigned long long>(result.per_queue[q].arrived),
                static_cast<unsigned long long>(
                    result.per_queue[q].delivered));
  }
  if (store::Spool* spool = experiment.spool()) {
    const store::ShardStats stats = spool->total_stats();
    std::printf("spooled %llu packets (%llu bytes) into %llu segment(s) "
                "under %s\n",
                static_cast<unsigned long long>(stats.packets_written),
                static_cast<unsigned long long>(stats.bytes_written),
                static_cast<unsigned long long>(stats.segments_opened),
                spool_dir.c_str());
    std::printf("read it back with: read-spool %s [expression]\n",
                spool_dir.c_str());
  }
  return 0;
}

int cmd_read_spool(const std::string& dir, const std::string& expression) {
  store::StoreReader reader{dir};
  std::printf("%zu segment(s) under %s\n", reader.segments().size(),
              dir.c_str());
  store::StoreQuery query;
  query.filter = expression;
  std::uint64_t packets = 0, bytes = 0;
  Nanos first{}, last{};
  const auto stats = reader.read_merged(
      query, [&](const net::PcapngRecord& record, std::uint32_t) {
        if (packets == 0) first = record.timestamp;
        last = record.timestamp;
        ++packets;
        bytes += record.orig_len;
      });
  const double duration = packets ? (last - first).seconds() : 0.0;
  std::printf("merged %llu packets (%llu bytes) in timestamp order, "
              "spanning %.3f s\n",
              static_cast<unsigned long long>(packets),
              static_cast<unsigned long long>(bytes), duration);
  std::printf("scanned %llu packets; indexes skipped %llu of %llu "
              "segment(s) (%llu by time, %llu by flow)\n",
              static_cast<unsigned long long>(stats.packets_scanned),
              static_cast<unsigned long long>(stats.segments_skipped_time +
                                              stats.segments_skipped_flow),
              static_cast<unsigned long long>(stats.segments_total),
              static_cast<unsigned long long>(stats.segments_skipped_time),
              static_cast<unsigned long long>(stats.segments_skipped_flow));
  return 0;
}

// --- summarize-latency: fold chunk.journey spans into a stage table ---

double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

int cmd_summarize_latency(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  // Each journey is one self-contained complete event:
  //   {"name":"chunk.journey",...,"tid":<ring>,"ts":...,"dur":<e2e us>,
  //    "args":{"capture":<ns>,"queue_wait":<ns>}}
  // so the fold needs no cross-event correlation: deliver is the
  // remainder dur - capture - queue_wait.
  std::vector<double> e2e, capture, queue_wait, deliver;
  std::map<long, std::uint64_t> per_ring;
  const std::string needle = "\"name\":\"chunk.journey\"";
  std::size_t pos = 0;
  while ((pos = content.find(needle, pos)) != std::string::npos) {
    const std::size_t end = content.find("}}", pos);
    if (end == std::string::npos) break;
    const auto field = [&](const char* key) -> double {
      const std::string want = std::string{"\""} + key + "\":";
      const std::size_t at = content.find(want, pos);
      if (at == std::string::npos || at > end) return -1.0;
      return std::strtod(content.c_str() + at + want.size(), nullptr);
    };
    const double dur_us = field("dur");
    const double capture_ns = field("capture");
    const double queue_wait_ns = field("queue_wait");
    const double tid = field("tid");
    pos = end + 1;
    if (dur_us < 0 || capture_ns < 0 || queue_wait_ns < 0) continue;
    const double e2e_ns = dur_us * 1000.0;
    e2e.push_back(e2e_ns);
    capture.push_back(capture_ns);
    queue_wait.push_back(queue_wait_ns);
    deliver.push_back(e2e_ns - capture_ns - queue_wait_ns);
    ++per_ring[static_cast<long>(tid)];
  }
  if (e2e.empty()) {
    std::fprintf(stderr,
                 "no chunk.journey spans in %s (was the run latency-enabled "
                 "with --trace-out?)\n",
                 path.c_str());
    return 1;
  }

  std::printf("%zu chunk.journey span(s) across %zu ring(s):",
              e2e.size(), per_ring.size());
  for (const auto& [ring, count] : per_ring) {
    std::printf("  ring %ld: %llu", ring,
                static_cast<unsigned long long>(count));
  }
  std::printf("\n%-12s %10s %10s %10s %10s %10s\n", "stage", "p50", "p90",
              "p99", "p999", "max");
  const auto row = [](const char* name, std::vector<double>& values) {
    std::sort(values.begin(), values.end());
    std::printf("%-12s %8.2fus %8.2fus %8.2fus %8.2fus %8.2fus\n", name,
                exact_quantile(values, 0.50) / 1000.0,
                exact_quantile(values, 0.90) / 1000.0,
                exact_quantile(values, 0.99) / 1000.0,
                exact_quantile(values, 0.999) / 1000.0,
                values.back() / 1000.0);
  };
  row("e2e", e2e);
  row("capture", capture);
  row("queue_wait", queue_wait);
  row("deliver", deliver);
  return 0;
}

int demo() {
  std::puts("trace_tools demo (run with arguments for real use; see "
            "header comment)");
  const auto dir = std::filesystem::temp_directory_path();
  const auto full = (dir / "wirecap_demo.pcap").string();
  const auto udp = (dir / "wirecap_demo_udp.pcap").string();
  if (const int rc = cmd_generate(full, 2.0, 0.05)) return rc;
  if (const int rc = cmd_inspect(full)) return rc;
  if (const int rc = cmd_filter(full, udp, "udp and 131.225.2")) return rc;
  if (const int rc = cmd_inspect(udp)) return rc;
  if (const int rc = cmd_replay(full, 4, 50)) return rc;
  const auto spool = (dir / "wirecap_demo_spool").string();
  if (const int rc = cmd_replay(full, 4, 50, spool)) return rc;
  if (const int rc = cmd_read_spool(spool, "udp")) return rc;
  std::filesystem::remove(full);
  std::filesystem::remove(udp);
  std::filesystem::remove_all(spool);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return demo();
    const std::string command = argv[1];
    if (command == "generate" && argc >= 3) {
      return cmd_generate(argv[2], argc > 3 ? std::atof(argv[3]) : 32.0,
                          argc > 4 ? std::atof(argv[4]) : 1.0);
    }
    if (command == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (command == "filter" && argc == 5) {
      return cmd_filter(argv[2], argv[3], argv[4]);
    }
    if (command == "replay" && argc >= 3) {
      // Positional [queues] [x] mixed with the --spool-dir=DIR flag.
      std::string spool_dir;
      std::vector<std::string> positional;
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--spool-dir=", 0) == 0) {
          spool_dir = arg.substr(12);
        } else {
          positional.push_back(arg);
        }
      }
      const std::uint32_t queues =
          positional.size() > 0
              ? static_cast<std::uint32_t>(std::atoi(positional[0].c_str()))
              : 6;
      const unsigned x =
          positional.size() > 1
              ? static_cast<unsigned>(std::atoi(positional[1].c_str()))
              : 300;
      return cmd_replay(argv[2], queues, x, spool_dir);
    }
    if (command == "read-spool" && argc >= 3) {
      return cmd_read_spool(argv[2], argc > 3 ? argv[3] : "");
    }
    if (command == "summarize-latency" && argc == 3) {
      return cmd_summarize_latency(argv[2]);
    }
    std::fprintf(stderr,
                 "usage: %s generate <out.pcap|out.pcapng> [seconds] [scale]\n"
                 "       %s inspect <in.pcap>\n"
                 "       %s filter <in.pcap> <out.pcap> <expression>\n"
                 "       %s replay <in.pcap> [queues] [x] [--spool-dir=DIR]\n"
                 "       %s read-spool <dir> [expression]\n"
                 "       %s summarize-latency <trace.json>\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
