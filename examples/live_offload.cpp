// Buddy-group offloading on real threads.
//
// live_capture.cpp showed one work-queue pair on real threads; this
// example runs the full §3.2.2 advanced-mode structure concurrently:
//
//   * two capture threads, each owning a ring buffer pool, fed by
//     deliberately imbalanced generators (queue 0 carries ~8x the load);
//   * two application threads, each nominally consuming its own queue;
//   * capture thread 0 monitors its capture queue's fill level and,
//     past the threshold T, places chunks on its buddy's capture queue
//     instead — across real threads, through the MPMC work queues;
//   * recycling routes each chunk back to the pool that owns it,
//     whichever application processed it.
//
// The run asserts chunk conservation and prints how the work split.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "driver/chunk_pool.hpp"
#include "net/headers.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

using namespace wirecap;

namespace {

constexpr std::uint32_t kCells = 128;       // M
constexpr std::uint32_t kChunks = 48;       // R
constexpr double kThreshold = 0.5;          // T
constexpr std::uint64_t kHotPackets = 3'000'000;
constexpr std::uint64_t kColdPackets = 400'000;

struct QueueFabric {
  explicit QueueFabric(std::uint32_t ring_id)
      : pool(0, ring_id, kCells, kChunks),
        capture_queue(kChunks * 2),
        recycle_queue(kChunks) {}

  driver::RingBufferPool pool;
  MpmcQueue<driver::ChunkMeta> capture_queue;
  MpmcQueue<driver::ChunkMeta> recycle_queue;
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> offloaded_out{0};
  std::atomic<std::uint64_t> consumed{0};
};

void capture_thread(QueueFabric& own, QueueFabric& buddy,
                    std::uint64_t packets, std::uint64_t seed,
                    bool may_offload) {
  trace::ConstantRateConfig config;
  config.packet_count = packets;
  Xoshiro256 rng{seed};
  config.flows = {trace::flow_for_queue(rng, 0, 1)};
  trace::ConstantRateSource source{config};

  std::uint64_t filled = 0;
  while (filled < packets) {
    while (auto meta = own.recycle_queue.try_pop()) {
      static_cast<void>(own.pool.recycle(*meta));
    }
    auto chunk = own.pool.capture_free_chunk(static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kCells, packets - filled)));
    if (!chunk) {
      if (auto meta = own.recycle_queue.pop()) {
        static_cast<void>(own.pool.recycle(*meta));
      }
      continue;
    }
    for (std::uint32_t cell = 0; cell < chunk->pkt_count; ++cell) {
      const auto packet = source.next();
      const auto dst = own.pool.cell(chunk->chunk_id, cell);
      const auto src = packet->bytes();
      std::copy(src.begin(), src.end(), dst.begin());
      own.pool.cell_info(chunk->chunk_id, cell).length = packet->snap_len();
      ++filled;
    }
    own.produced.fetch_add(chunk->pkt_count, std::memory_order_relaxed);

    // The offloading decision (Figure 7b): past threshold T, the least
    // busy buddy gets the chunk.
    QueueFabric* target = &own;
    if (may_offload &&
        static_cast<double>(own.capture_queue.size()) / kChunks >
            kThreshold &&
        buddy.capture_queue.size() < own.capture_queue.size()) {
      target = &buddy;
      own.offloaded_out.fetch_add(1, std::memory_order_relaxed);
    }
    target->capture_queue.push(*chunk);
  }
  // Note: the capture queue is closed by main() only after *both*
  // capture threads finish — a buddy may still be offloading into ours.
}

void app_thread(std::vector<QueueFabric*> fabrics, std::uint32_t own_index,
                std::atomic<std::uint64_t>& processed) {
  QueueFabric& own = *fabrics[own_index];
  while (auto meta = own.capture_queue.pop()) {
    // A chunk may belong to any buddy's pool: route by its ring id.
    QueueFabric& owner = *fabrics[meta->ring_id];
    std::uint64_t bytes = 0;
    for (std::uint32_t cell = 0; cell < meta->pkt_count; ++cell) {
      bytes += owner.pool.cell_info(meta->chunk_id, cell).length;
    }
    static_cast<void>(bytes);
    processed.fetch_add(meta->pkt_count, std::memory_order_relaxed);
    own.consumed.fetch_add(meta->pkt_count, std::memory_order_relaxed);
    owner.recycle_queue.push(*meta);
  }
}

}  // namespace

int main() {
  std::printf("buddy-group offloading on real threads "
              "(hot queue: %llu packets, cold queue: %llu)\n",
              static_cast<unsigned long long>(kHotPackets),
              static_cast<unsigned long long>(kColdPackets));

  QueueFabric queue0{0};
  QueueFabric queue1{1};
  std::vector<QueueFabric*> fabrics{&queue0, &queue1};
  std::atomic<std::uint64_t> processed0{0}, processed1{0};

  const auto start = std::chrono::steady_clock::now();
  std::thread cap0{capture_thread, std::ref(queue0), std::ref(queue1),
                   kHotPackets, 0x51EE0, true};
  std::thread cap1{capture_thread, std::ref(queue1), std::ref(queue0),
                   kColdPackets, 0x51EE1, true};
  std::thread app0{app_thread, fabrics, 0u, std::ref(processed0)};
  std::thread app1{app_thread, fabrics, 1u, std::ref(processed1)};
  cap0.join();
  cap1.join();
  queue0.capture_queue.close();
  queue1.capture_queue.close();
  app0.join();
  app1.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  const std::uint64_t total = processed0 + processed1;
  std::printf("processed %llu packets in %.2f s (%.2f Mp/s aggregate)\n",
              static_cast<unsigned long long>(total), wall,
              static_cast<double>(total) / wall / 1e6);
  std::printf("app thread 0 consumed %llu, app thread 1 consumed %llu\n",
              static_cast<unsigned long long>(queue0.consumed.load()),
              static_cast<unsigned long long>(queue1.consumed.load()));
  std::printf("capture thread 0 offloaded %llu chunks to its buddy\n",
              static_cast<unsigned long long>(queue0.offloaded_out.load()));

  const bool conserved = total == kHotPackets + kColdPackets;
  std::printf("conservation: %s\n", conserved ? "exact" : "VIOLATED");
  return conserved ? 0 : 1;
}
