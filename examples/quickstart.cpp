// Quickstart: capture packets with WireCAP through the
// libpcap-compatible interface.
//
// This example builds the smallest complete pipeline:
//
//   traffic generator -> simulated 10 GbE NIC -> WireCAP engine
//     -> PcapHandle (libpcap-style open/filter/loop) -> your callback
//
// and prints the first few captured packets plus the capture statistics.
// Everything runs on the deterministic simulation clock; see
// live_capture.cpp for the same pipeline on real threads.
#include <cstdio>

#include "engines/factory.hpp"
#include "net/headers.hpp"
#include "nic/device.hpp"
#include "nic/wire.hpp"
#include "pcapcompat/pcap_compat.hpp"
#include "trace/constant_rate.hpp"
#include "trace/flow_gen.hpp"

using namespace wirecap;

int main() {
  std::puts("WireCAP quickstart\n==================");

  // 1. The simulation fabric: a scheduler (virtual time), an I/O bus,
  //    and a single-queue 10 GbE NIC.
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};  // unconstrained
  nic::NicConfig nic_config;
  nic_config.rx_ring_size = 1024;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};

  // 2. The WireCAP engine: a ring buffer pool of R=100 chunks x M=256
  //    cells per receive queue, managed by a dedicated capture thread.
  //    make_engine builds any registered engine by name ("WireCAP-B",
  //    "PF_RING", "DPDK", ...) so swapping engines is a string change.
  engines::EngineConfig engine_config;
  engine_config.cells_per_chunk = 256;  // M
  engine_config.chunk_count = 100;      // R
  auto engine = engines::make_engine("WireCAP-B", nic, engine_config);

  // 3. A libpcap-compatible handle, like pcap_open_live + pcap_setfilter.
  sim::SimCore app_core{scheduler, /*id=*/0};
  pcap::PcapHandle handle{scheduler, *engine, nic, /*queue=*/0, app_core};
  handle.set_filter(pcap::PcapHandle::compile("udp and 131.225.2"));

  // 4. Some traffic: 10,000 64-byte packets at wire rate, alternating a
  //    matching UDP flow and a non-matching TCP flow.
  trace::ConstantRateConfig traffic;
  traffic.packet_count = 10'000;
  traffic.flows = {
      net::FlowKey{net::Ipv4Addr{131, 225, 2, 7}, net::Ipv4Addr{8, 8, 8, 8},
                   40001, 53, net::IpProto::kUdp},
      net::FlowKey{net::Ipv4Addr{192, 168, 1, 1}, net::Ipv4Addr{8, 8, 4, 4},
                   40002, 443, net::IpProto::kTcp},
  };
  trace::ConstantRateSource source{traffic};
  nic::TrafficInjector injector{scheduler, source, nic};
  injector.start();

  // 5. pcap_loop: handle 5 matching packets, printing each.
  std::puts("\nfirst five matching packets:");
  handle.loop(5, [](const pcap::PacketHeader& header,
                    std::span<const std::byte> data) {
    const auto flow = net::parse_flow(data);
    std::printf("  %9.3f us  %4u bytes  %s\n",
                static_cast<double>(header.ts_ns) / 1000.0, header.len,
                flow ? flow->to_string().c_str() : "(non-IP)");
  });

  // 6. Drain the rest of the experiment and report statistics.  (Note:
  //    like libpcap, loop(0, ...) would run forever on a live capture —
  //    advance the clock explicitly, then collect what is buffered.)
  scheduler.run_until(Nanos::from_seconds(1));
  int matched = 5;
  handle.dispatch(0, [&](const pcap::PacketHeader&, std::span<const std::byte>) {
    ++matched;
  });
  const pcap::Stats stats = handle.stats();
  std::printf("\ncaptured %llu packets, %d matched the filter\n",
              static_cast<unsigned long long>(stats.ps_recv), matched);
  std::printf("drops: %llu delivery, %llu interface (lossless as promised)\n",
              static_cast<unsigned long long>(stats.ps_drop),
              static_cast<unsigned long long>(stats.ps_ifdrop));
  return 0;
}
