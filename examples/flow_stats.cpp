// Flow statistics collector — the paper's second motivating application
// class ("packet-based network performance analysis applications").
//
// A NetFlow-style collector built from the in-capture pipeline: each
// queue's PipelineRunner executes the stage spec "aggregate" (the same
// chain `--pipeline=aggregate` builds on the benches), folding every
// packet into a net::FlowTable before delivery.  Run over the
// border-router trace on a six-queue WireCAP-A setup, it demonstrates
// that flow records stay whole (per-flow steering + buddy offloading
// never split a flow away from the application) even while the hot
// queue is overloaded.
#include <cstdio>

#include "apps/harness.hpp"
#include "net/flow_table.hpp"
#include "pipeline/stages.hpp"
#include "trace/border_router.hpp"

using namespace wirecap;

int main() {
  std::puts("flow statistics collector on WireCAP (6 queues, advanced mode)");
  std::puts("(pipeline spec: \"aggregate\" — per-flow accounting in capture)");

  constexpr std::uint32_t kQueues = 6;
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.offload_threshold = 0.6;
  config.num_queues = kQueues;
  config.x = 120;  // moderate per-packet accounting cost
  config.filter = "";
  config.pipeline = "aggregate";  // what --pipeline=aggregate sets

  apps::Experiment experiment(std::move(config));

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = 10.0;
  auto source = trace::make_border_router_source(trace_config);
  const apps::ExperimentResult result = experiment.run(
      *source, Nanos::from_seconds(trace_config.duration_s + 10));

  // Merge the per-thread tables for the whole-application report.  (With
  // buddy offloading, a flow's packets may be *processed* by any thread
  // of this application — but they remain inside the application.)
  net::FlowTable merged;
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    const auto* aggregate = dynamic_cast<const pipeline::AggregateStage*>(
        experiment.runner(q).pipeline().find("aggregate"));
    merged.merge(aggregate->table());
  }

  std::printf("\npackets: %llu injected, %llu accounted, %llu unclassified, "
              "%llu dropped (offloading kept the books complete)\n",
              static_cast<unsigned long long>(result.sent),
              static_cast<unsigned long long>(merged.total_packets()),
              static_cast<unsigned long long>(merged.unclassified()),
              static_cast<unsigned long long>(result.capture_dropped +
                                              result.delivery_dropped));
  std::printf("flows tracked: %zu\n", merged.size());

  // Top flows by volume — the classic "heavy hitter" report.
  std::puts("\ntop 8 flows by bytes:");
  std::printf("  %-44s %10s %12s %10s %10s\n", "flow", "packets", "bytes",
              "secs", "pkt/s");
  for (const auto& [flow, record] : merged.top_by_bytes(8)) {
    std::printf("  %-44s %10llu %12llu %10.2f %10.0f\n",
                flow.to_string().c_str(),
                static_cast<unsigned long long>(record.packets),
                static_cast<unsigned long long>(record.bytes),
                record.duration_s(), record.rate_pps());
  }
  return 0;
}
