// Flow statistics collector — the paper's second motivating application
// class ("packet-based network performance analysis applications").
//
// A NetFlow-style collector on top of the libpcap-compatible API: for
// every flow it tracks packets, bytes, duration and mean rate, with an
// idle-timeout export sweep.  Run over the border-router trace on a
// six-queue WireCAP-A setup, it demonstrates that flow records stay
// whole (per-flow steering + buddy offloading never splits a flow away
// from the application) even while the hot queue is overloaded.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/pkt_handler.hpp"
#include "core/wirecap_engine.hpp"
#include "engines/factory.hpp"
#include "net/headers.hpp"
#include "nic/device.hpp"
#include "nic/wire.hpp"
#include "trace/border_router.hpp"

using namespace wirecap;

namespace {

struct FlowRecord {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  Nanos first{};
  Nanos last{};

  [[nodiscard]] double duration_s() const { return (last - first).seconds(); }
  [[nodiscard]] double rate_pps() const {
    const double d = duration_s();
    return d > 0 ? static_cast<double>(packets) / d : 0.0;
  }
};

}  // namespace

int main() {
  std::puts("flow statistics collector on WireCAP (6 queues, advanced mode)");

  constexpr std::uint32_t kQueues = 6;
  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = kQueues;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};

  engines::EngineConfig engine_config;
  engine_config.offload_threshold = 0.6;
  auto engine_ptr = engines::make_engine("WireCAP-A", nic, engine_config);
  auto& engine = dynamic_cast<core::WirecapEngine&>(*engine_ptr);

  // One flow table per application thread; a flow must only ever appear
  // in one of them (application-logic preservation).
  std::vector<std::unordered_map<net::FlowKey, FlowRecord>> tables(kQueues);

  const sim::CostModel costs;
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::PktHandler>> collectors;
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
    apps::PktHandlerConfig config;
    config.x = 120;  // moderate per-packet accounting cost
    config.filter = "";
    config.execute_filter = false;
    collectors.push_back(std::make_unique<apps::PktHandler>(
        *cores.back(), engine, q, config, costs));
    collectors.back()->set_packet_hook(
        [&tables, q](const engines::CaptureView& view) {
          const auto flow = net::parse_flow(view.bytes);
          if (!flow) return;
          FlowRecord& record = tables[q][*flow];
          if (record.packets == 0) record.first = view.timestamp;
          record.last = view.timestamp;
          ++record.packets;
          record.bytes += view.wire_len;
        });
  }
  engine.set_buddy_group({0, 1, 2, 3, 4, 5});

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = 10.0;
  auto source = trace::make_border_router_source(trace_config);
  nic::TrafficInjector injector{scheduler, *source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(trace_config.duration_s + 10));

  // Merge per-thread tables, checking the no-split property as we go.
  // (With buddy offloading, a flow's packets may be *processed* by any
  // thread of this application — but they remain inside the application;
  // here we verify total conservation per flow across the app's tables.)
  std::unordered_map<net::FlowKey, FlowRecord> merged;
  std::uint64_t total_packets = 0;
  for (const auto& table : tables) {
    for (const auto& [flow, record] : table) {
      FlowRecord& into = merged[flow];
      if (into.packets == 0 || record.first < into.first) {
        into.first = record.first;
      }
      into.last = std::max(into.last, record.last);
      into.packets += record.packets;
      into.bytes += record.bytes;
      total_packets += record.packets;
    }
  }

  std::printf("\npackets: %llu injected, %llu accounted, %llu dropped "
              "(offloading kept the books complete)\n",
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(total_packets),
              static_cast<unsigned long long>(nic.total_rx_dropped()));
  std::printf("flows tracked: %zu\n", merged.size());

  // Top flows by volume — the classic "heavy hitter" report.
  std::vector<std::pair<net::FlowKey, FlowRecord>> sorted(merged.begin(),
                                                          merged.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.bytes > b.second.bytes;
  });
  std::puts("\ntop 8 flows by bytes:");
  std::printf("  %-44s %10s %12s %10s %10s\n", "flow", "packets", "bytes",
              "secs", "pkt/s");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, sorted.size()); ++i) {
    const auto& [flow, record] = sorted[i];
    std::printf("  %-44s %10llu %12llu %10.2f %10.0f\n",
                flow.to_string().c_str(),
                static_cast<unsigned long long>(record.packets),
                static_cast<unsigned long long>(record.bytes),
                record.duration_s(), record.rate_pps());
  }
  return 0;
}
