// IDS-style monitor — the paper's motivating workload (§1: intrusion
// detection systems are the canonical heavy per-packet consumers that
// drop packets under load).
//
// A multi-queue NIC spreads border-router traffic across six receive
// queues by RSS; a heavyweight analysis thread (emulating snort-class
// per-packet work, the paper's x=300 ~ 38,844 p/s) runs per queue.  The
// six queues form one buddy group, so when the per-flow steering
// concentrates load on one queue, WireCAP's advanced mode offloads
// chunks to the idle buddies instead of dropping.
//
// The example runs the same trace twice — basic mode, then advanced
// mode — and reports per-queue counters and simple "alert" statistics
// from a real BPF signature set.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/pkt_handler.hpp"
#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"
#include "core/wirecap_engine.hpp"
#include "engines/factory.hpp"
#include "nic/device.hpp"
#include "nic/wire.hpp"
#include "trace/border_router.hpp"

using namespace wirecap;

namespace {

struct Signature {
  const char* name;
  bpf::Program program;
};

struct RunResult {
  std::uint64_t injected = 0;
  std::uint64_t dropped = 0;
  std::uint64_t inspected = 0;
  std::uint64_t offloaded = 0;
  std::vector<std::uint64_t> per_queue_inspected;
  std::vector<std::uint64_t> alerts;
};

RunResult run_ids(bool advanced_mode) {
  constexpr std::uint32_t kQueues = 6;

  sim::Scheduler scheduler;
  sim::IoBus bus{scheduler};
  nic::NicConfig nic_config;
  nic_config.num_rx_queues = kQueues;
  nic::MultiQueueNic nic{scheduler, bus, nic_config};

  engines::EngineConfig engine_config;
  engine_config.cells_per_chunk = 256;
  engine_config.chunk_count = 100;
  engine_config.offload_threshold = 0.6;
  auto engine_ptr = engines::make_engine(
      advanced_mode ? "WireCAP-A" : "WireCAP-B", nic, engine_config);
  auto& engine = dynamic_cast<core::WirecapEngine&>(*engine_ptr);

  // Signature set: compiled once, applied to every inspected packet.
  std::vector<Signature> signatures;
  signatures.push_back({"udp-to-fermilab", bpf::compile_filter(
                                               "udp and dst net 131.225.0.0/16")});
  signatures.push_back({"ssh-traffic", bpf::compile_filter("tcp port 22")});
  signatures.push_back({"tiny-frames", bpf::compile_filter("len <= 64")});

  RunResult result;
  result.per_queue_inspected.assign(kQueues, 0);
  result.alerts.assign(signatures.size(), 0);

  const sim::CostModel costs;
  std::vector<std::unique_ptr<sim::SimCore>> cores;
  std::vector<std::unique_ptr<apps::PktHandler>> analysts;
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    cores.push_back(std::make_unique<sim::SimCore>(scheduler, q));
    // x=300 charges the snort-class per-packet CPU cost; the hook runs
    // the real signature programs on the packet bytes.
    apps::PktHandlerConfig handler_config;
    handler_config.x = 300;
    handler_config.filter = "";
    handler_config.execute_filter = false;
    analysts.push_back(std::make_unique<apps::PktHandler>(
        *cores.back(), engine, q, handler_config, costs));
    analysts.back()->set_packet_hook(
        [&result, &signatures, q](const engines::CaptureView& view) {
          ++result.inspected;
          ++result.per_queue_inspected[q];
          for (std::size_t s = 0; s < signatures.size(); ++s) {
            if (bpf::matches(signatures[s].program, view.bytes,
                             view.wire_len)) {
              ++result.alerts[s];
            }
          }
        });
  }
  if (advanced_mode) {
    engine.set_buddy_group({0, 1, 2, 3, 4, 5});
  }

  trace::BorderRouterConfig trace_config;
  trace_config.duration_s = 8.0;
  trace_config.hot_phase_split_s = 1.0;
  auto source = trace::make_border_router_source(trace_config);
  nic::TrafficInjector injector{scheduler, *source, nic};
  injector.start();
  scheduler.run_until(Nanos::from_seconds(trace_config.duration_s + 10));

  result.injected = injector.injected();
  result.dropped = nic.total_rx_dropped();
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    result.offloaded += engine.queue_stats(q).chunks_offloaded_out;
  }
  return result;
}

void report(const char* mode, const RunResult& result) {
  std::printf("\n--- %s ---\n", mode);
  std::printf("packets on the wire: %llu\n",
              static_cast<unsigned long long>(result.injected));
  std::printf("dropped before inspection: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(result.dropped),
              100.0 * static_cast<double>(result.dropped) /
                  static_cast<double>(result.injected));
  std::printf("inspected: %llu; chunks offloaded between cores: %llu\n",
              static_cast<unsigned long long>(result.inspected),
              static_cast<unsigned long long>(result.offloaded));
  std::printf("per-queue inspected:");
  for (const auto count : result.per_queue_inspected) {
    std::printf(" %llu", static_cast<unsigned long long>(count));
  }
  std::printf("\nalerts: udp-to-fermilab=%llu ssh=%llu tiny=%llu\n",
              static_cast<unsigned long long>(result.alerts[0]),
              static_cast<unsigned long long>(result.alerts[1]),
              static_cast<unsigned long long>(result.alerts[2]));
}

}  // namespace

int main() {
  std::puts("IDS monitor on WireCAP: basic vs advanced mode");
  std::puts("(six RSS queues, snort-class analysis threads, real BPF "
            "signatures)");

  const RunResult basic = run_ids(/*advanced_mode=*/false);
  report("basic mode (no offloading)", basic);

  const RunResult advanced = run_ids(/*advanced_mode=*/true);
  report("advanced mode (buddy-group offloading)", advanced);

  std::printf("\nmissed-alert reduction: %.1f%% of traffic was invisible to "
              "the IDS in basic mode, %.1f%% in advanced mode\n",
              100.0 * static_cast<double>(basic.dropped) /
                  static_cast<double>(basic.injected),
              100.0 * static_cast<double>(advanced.dropped) /
                  static_cast<double>(advanced.injected));
  return 0;
}
