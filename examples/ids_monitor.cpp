// IDS-style monitor — the paper's motivating workload (§1: intrusion
// detection systems are the canonical heavy per-packet consumers that
// drop packets under load) — now as the headline of the in-capture
// pipeline: ONE capture box (one WireCAP-A engine over six RSS queues)
// simultaneously serves three applications as zero-copy fan-out
// subscribers of the same chunk stream:
//
//   * "ids"   — snort-class signature matching (real BPF programs),
//   * "flows" — a NetFlow-style collector over net::FlowTable,
//   * "spool" — a capture-to-disk consumer (byte/chunk accounting
//               standing in for store::Spool).
//
// Every subscriber's views alias the same ring-buffer-pool chunks; the
// per-chunk refcount recycles a chunk only after the LAST subscriber
// releases it.  To show nothing is lost in the sharing, the same trace
// is then replayed twice more with each application owning a dedicated
// engine, and the per-application results are compared — they match
// byte for byte.
#include <cstdio>
#include <vector>

#include "apps/harness.hpp"
#include "bpf/codegen.hpp"
#include "bpf/vm.hpp"
#include "net/flow_table.hpp"
#include "trace/border_router.hpp"

using namespace wirecap;

namespace {

constexpr std::uint32_t kQueues = 6;
constexpr unsigned kIdsCostX = 300;   // snort-class per-packet work
constexpr unsigned kFlowCostX = 120;  // accounting-class per-packet work

trace::BorderRouterConfig trace_config() {
  trace::BorderRouterConfig config;
  config.duration_s = 6.0;
  config.hot_phase_split_s = 1.0;
  return config;
}

apps::ExperimentConfig base_config() {
  apps::ExperimentConfig config;
  config.engine.kind = apps::EngineKind::kWirecapAdvanced;
  config.engine.cells_per_chunk = 256;
  config.engine.chunk_count = 100;
  config.engine.offload_threshold = 0.6;
  config.num_queues = kQueues;
  config.filter = "";
  return config;
}

struct Signature {
  const char* name;
  bpf::Program program;
};

std::vector<Signature> make_signatures() {
  std::vector<Signature> signatures;
  signatures.push_back(
      {"udp-to-fermilab",
       bpf::compile_filter("udp and dst net 131.225.0.0/16")});
  signatures.push_back({"ssh-traffic", bpf::compile_filter("tcp port 22")});
  signatures.push_back({"tiny-frames", bpf::compile_filter("len <= 64")});
  return signatures;
}

struct IdsState {
  std::vector<Signature> signatures = make_signatures();
  std::uint64_t inspected = 0;
  std::vector<std::uint64_t> per_queue_inspected =
      std::vector<std::uint64_t>(kQueues, 0);
  std::vector<std::uint64_t> alerts = std::vector<std::uint64_t>(3, 0);

  void inspect(std::uint32_t queue, const engines::CaptureView& view) {
    ++inspected;
    ++per_queue_inspected[queue];
    for (std::size_t s = 0; s < signatures.size(); ++s) {
      if (bpf::matches(signatures[s].program, view.bytes, view.wire_len)) {
        ++alerts[s];
      }
    }
  }
};

struct FlowState {
  // One table per application thread (a flow only ever lands in one).
  std::vector<net::FlowTable> tables = std::vector<net::FlowTable>(kQueues);

  [[nodiscard]] net::FlowTable merged() const {
    net::FlowTable merged_table;
    for (const net::FlowTable& table : tables) merged_table.merge(table);
    return merged_table;
  }
};

struct SpoolState {
  std::uint64_t batches = 0;
  std::uint64_t bytes = 0;
};

/// The shared-engine run: three subscribers per queue on one fan-out.
struct SharedResult {
  IdsState ids;
  FlowState flows;
  SpoolState spool;
  apps::ExperimentResult experiment;
};

SharedResult run_shared() {
  SharedResult result;
  apps::ExperimentConfig config = base_config();
  // One combined processing budget for the shared box: the IDS is the
  // heavyweight consumer, so its cost dominates the runner's work item.
  config.x = kIdsCostX;
  config.steering = pipeline::Steering::kBroadcast;
  config.subscribers = [&result](std::uint32_t q) {
    std::vector<pipeline::Subscriber> subs;
    subs.push_back({"ids",
                    [&result, q](pipeline::SharedBatch batch) {
                      for (const engines::CaptureView& view : batch.batch()) {
                        result.ids.inspect(q, view);
                      }
                    },
                    std::nullopt});
    subs.push_back({"flows",
                    [&result, q](pipeline::SharedBatch batch) {
                      for (const engines::CaptureView& view : batch.batch()) {
                        result.flows.tables[q].update(view);
                      }
                    },
                    std::nullopt});
    subs.push_back({"spool",
                    [&result](pipeline::SharedBatch batch) {
                      ++result.spool.batches;
                      for (const engines::CaptureView& view : batch.batch()) {
                        result.spool.bytes += view.wire_len;
                      }
                    },
                    std::nullopt});
    return subs;
  };

  apps::Experiment experiment(std::move(config));
  const trace::BorderRouterConfig trace = trace_config();
  auto source = trace::make_border_router_source(trace);
  result.experiment =
      experiment.run(*source, Nanos::from_seconds(trace.duration_s + 10));
  return result;
}

IdsState run_dedicated_ids() {
  IdsState ids;
  apps::ExperimentConfig config = base_config();
  config.x = kIdsCostX;
  config.execute_filter = false;
  apps::Experiment experiment(std::move(config));
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    experiment.handler(q).set_packet_hook(
        [&ids, q](const engines::CaptureView& view) { ids.inspect(q, view); });
  }
  const trace::BorderRouterConfig trace = trace_config();
  auto source = trace::make_border_router_source(trace);
  experiment.run(*source, Nanos::from_seconds(trace.duration_s + 10));
  return ids;
}

FlowState run_dedicated_flows() {
  FlowState flows;
  apps::ExperimentConfig config = base_config();
  config.x = kFlowCostX;
  config.execute_filter = false;
  apps::Experiment experiment(std::move(config));
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    experiment.handler(q).set_packet_hook(
        [&flows, q](const engines::CaptureView& view) {
          flows.tables[q].update(view);
        });
  }
  const trace::BorderRouterConfig trace = trace_config();
  auto source = trace::make_border_router_source(trace);
  experiment.run(*source, Nanos::from_seconds(trace.duration_s + 10));
  return flows;
}

bool same_flow_tables(const net::FlowTable& a, const net::FlowTable& b) {
  if (a.size() != b.size() || a.total_packets() != b.total_packets() ||
      a.total_bytes() != b.total_bytes()) {
    return false;
  }
  for (const auto& [flow, record] : a.records()) {
    const auto it = b.records().find(flow);
    if (it == b.records().end() || it->second.packets != record.packets ||
        it->second.bytes != record.bytes || it->second.first != record.first ||
        it->second.last != record.last) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  std::puts("one capture box, three consumers: IDS + flow stats + spool");
  std::puts("(six RSS queues, WireCAP-A, zero-copy fan-out subscriptions)");

  const SharedResult shared = run_shared();

  std::printf("\npackets on the wire: %llu, dropped: %llu (%.2f%%)\n",
              static_cast<unsigned long long>(shared.experiment.sent),
              static_cast<unsigned long long>(
                  shared.experiment.capture_dropped +
                  shared.experiment.delivery_dropped),
              100.0 * shared.experiment.drop_rate());
  std::printf("chunks offloaded between buddy cores: %llu\n",
              static_cast<unsigned long long>(
                  shared.experiment.offloaded_chunks));

  std::printf("\n[ids]   inspected: %llu\n",
              static_cast<unsigned long long>(shared.ids.inspected));
  std::printf("[ids]   alerts: udp-to-fermilab=%llu ssh=%llu tiny=%llu\n",
              static_cast<unsigned long long>(shared.ids.alerts[0]),
              static_cast<unsigned long long>(shared.ids.alerts[1]),
              static_cast<unsigned long long>(shared.ids.alerts[2]));
  const net::FlowTable shared_merged = shared.flows.merged();
  std::printf("[flows] flows tracked: %zu (%llu packets, %llu bytes)\n",
              shared_merged.size(),
              static_cast<unsigned long long>(shared_merged.total_packets()),
              static_cast<unsigned long long>(shared_merged.total_bytes()));
  std::printf("[spool] spooled: %llu bytes in %llu batches\n",
              static_cast<unsigned long long>(shared.spool.bytes),
              static_cast<unsigned long long>(shared.spool.batches));

  std::puts("\nreplaying the same trace with one DEDICATED engine per app...");
  const IdsState dedicated_ids = run_dedicated_ids();
  const FlowState dedicated_flows = run_dedicated_flows();

  const bool ids_match =
      shared.ids.inspected == dedicated_ids.inspected &&
      shared.ids.alerts == dedicated_ids.alerts &&
      shared.ids.per_queue_inspected == dedicated_ids.per_queue_inspected;
  const bool flows_match =
      same_flow_tables(shared_merged, dedicated_flows.merged());

  std::printf("\nshared vs dedicated, per-app results: ids %s, flows %s\n",
              ids_match ? "IDENTICAL" : "DIFFERENT",
              flows_match ? "IDENTICAL" : "DIFFERENT");
  std::puts(ids_match && flows_match
                ? "sharing one capture engine cost the apps nothing."
                : "mismatch — expected only under overload (check drops).");
  return ids_match && flows_match ? 0 : 1;
}
